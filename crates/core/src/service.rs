//! `EaseService` — the *train once, query cheaply* entry point.
//!
//! The paper's economic argument (Sec. I) is that EASE's profiling cost
//! amortizes over many future queries: a trained selector is an asset that
//! answers `(graph, algorithm, goal)` questions for the rest of its life.
//! This module makes that the first-class API shape:
//!
//! * [`EaseServiceBuilder`] — validated, fluent configuration of the
//!   training pipeline (scale, model grid, CV folds, seed, timing mode,
//!   optimization goal), producing a trained [`EaseService`].
//! * [`EaseService::recommend`] / [`EaseService::recommend_batch`] —
//!   query-oriented selection with typed [`EaseError`]s; the batch variant
//!   fans queries out over `std::thread` for concurrent serving.
//! * [`EaseService::recommend_graph`] — graph-in, answer-out: property
//!   extraction runs through a fingerprint-keyed LRU cache, so repeated
//!   queries on the same graph skip the (advanced-tier) extraction
//!   entirely.
//! * [`EaseService::save`] / [`EaseService::load`] — versioned binary
//!   persistence of the whole trained system (all fitted models plus
//!   provenance), so a selector trained in one process answers queries in
//!   another, bit-identically.
//!
//! ```no_run
//! use ease::service::EaseServiceBuilder;
//! use ease::selector::OptGoal;
//! use ease_graphgen::Scale;
//! use ease_procsim::Workload;
//!
//! let service = EaseServiceBuilder::at_scale(Scale::Tiny).train()?;
//! service.save(std::path::Path::new("ease.model"))?;
//!
//! let graph = ease_graphgen::realworld::socfb_analogue(Scale::Tiny, 42).graph;
//! let props = ease_graph::GraphProperties::compute_advanced(&graph);
//! let pick = service.recommend(&props, Workload::PageRank { iterations: 10 }, OptGoal::EndToEnd)?;
//! println!("EASE picks {}", pick.best.name());
//! # Ok::<(), ease::EaseError>(())
//! ```

use crate::error::EaseError;
use crate::pipeline::{train_ease, EaseConfig, TrainingArtifacts};
use crate::predictors::{
    ChosenModel, PartitioningTimePredictor, PartitioningTimePredictorParams,
    ProcessingTimePredictor, ProcessingTimePredictorParams, QualityPredictor,
    QualityPredictorParams,
};
use crate::profiling::TimingMode;
use crate::selector::{Ease, OptGoal, Selection};
use ease_graph::{Graph, GraphProperties, PreparedGraph, PropertyTier};
use ease_graphgen::Scale;
use ease_ml::persist::{
    decode_config, decode_model, encode_config, encode_model, read_header, write_header,
    PersistError, Reader, Writer,
};
use ease_ml::ModelConfig;
use ease_partition::{PartitionerId, QualityTarget};
use ease_procsim::Workload;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Builder for a trained [`EaseService`].
///
/// Starts from the calibrated defaults of [`EaseConfig::at_scale`]; every
/// knob can be overridden fluently. [`EaseServiceBuilder::train`] validates
/// the configuration (typed [`EaseError::InvalidConfig`] instead of a panic
/// deep inside the pipeline) and runs the full profile → select → fit
/// pipeline.
#[derive(Debug, Clone)]
pub struct EaseServiceBuilder {
    cfg: EaseConfig,
    default_k: usize,
    default_goal: OptGoal,
}

impl EaseServiceBuilder {
    /// Calibrated defaults for a scale (see [`EaseConfig::at_scale`]).
    pub fn at_scale(scale: Scale) -> Self {
        let cfg = EaseConfig::at_scale(scale);
        EaseServiceBuilder { default_k: cfg.processing_k, cfg, default_goal: OptGoal::EndToEnd }
    }

    /// Wrap an explicit pipeline configuration (escape hatch for the
    /// experiment binaries).
    pub fn from_config(cfg: EaseConfig) -> Self {
        EaseServiceBuilder { default_k: cfg.processing_k, cfg, default_goal: OptGoal::EndToEnd }
    }

    /// The hyper-parameter grid searched per predictor component.
    pub fn model_grid(mut self, grid: Vec<ModelConfig>) -> Self {
        self.cfg.grid = grid;
        self
    }

    /// Use the reduced quick grid (fast training, slightly weaker models).
    pub fn quick_grid(self) -> Self {
        self.model_grid(ease_ml::zoo::quick_grid())
    }

    /// Cross-validation folds for model selection (paper: 5).
    pub fn folds(mut self, folds: usize) -> Self {
        self.cfg.folds = folds;
        self
    }

    /// Master seed for corpora generation, CV shuffling and model fitting.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Wall-clock measurement vs. reproducible analytical timing proxy.
    pub fn timing(mut self, timing: TimingMode) -> Self {
        self.cfg.timing = timing;
        self
    }

    /// Graph-property tier used by the quality predictor.
    pub fn tier(mut self, tier: PropertyTier) -> Self {
        self.cfg.tier = tier;
        self
    }

    /// Default optimization goal for [`EaseService::recommend`] callers
    /// that take it from the service.
    pub fn goal(mut self, goal: OptGoal) -> Self {
        self.default_goal = goal;
        self
    }

    /// Partition counts profiled for the quality predictor.
    pub fn partition_counts(mut self, ks: Vec<usize>) -> Self {
        self.cfg.ks = ks;
        self
    }

    /// Partition count for the processing profiling runs and the default
    /// `k` of [`EaseService::recommend`].
    pub fn processing_k(mut self, k: usize) -> Self {
        self.cfg.processing_k = k;
        self.default_k = k;
        self
    }

    /// Candidate partitioners (training + the recommendation catalog).
    pub fn partitioners(mut self, partitioners: Vec<PartitionerId>) -> Self {
        self.cfg.partitioners = partitioners;
        self
    }

    /// Training workloads — the algorithms the service can answer for.
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.cfg.workloads = workloads;
        self
    }

    /// Cap the R-MAT-SMALL corpus (quality-predictor training set).
    pub fn max_small_graphs(mut self, cap: Option<usize>) -> Self {
        self.cfg.max_small_graphs = cap;
        self
    }

    /// Cap the R-MAT-LARGE corpus (time-predictor training set).
    pub fn max_large_graphs(mut self, cap: Option<usize>) -> Self {
        self.cfg.max_large_graphs = cap;
        self
    }

    /// The underlying pipeline configuration (read access for reporting).
    pub fn config(&self) -> &EaseConfig {
        &self.cfg
    }

    fn validate(&self) -> Result<(), EaseError> {
        let bad = |msg: String| Err(EaseError::InvalidConfig(msg));
        if self.cfg.folds < 2 {
            return bad(format!("cross-validation needs >= 2 folds, got {}", self.cfg.folds));
        }
        if self.cfg.grid.is_empty() {
            return bad("model grid is empty".into());
        }
        if self.cfg.ks.is_empty() {
            return bad("no partition counts (ks) to profile".into());
        }
        if self.cfg.ks.iter().any(|&k| k < 2) {
            return bad("partition counts must be >= 2".into());
        }
        if self.cfg.processing_k < 2 {
            return bad(format!("processing_k must be >= 2, got {}", self.cfg.processing_k));
        }
        if self.cfg.partitioners.is_empty() {
            return bad("no candidate partitioners".into());
        }
        if self.cfg.workloads.is_empty() {
            return bad("no training workloads".into());
        }
        if self.cfg.max_small_graphs == Some(0) || self.cfg.max_large_graphs == Some(0) {
            return bad("graph-corpus caps must be >= 1".into());
        }
        if self.default_k < 2 {
            return bad(format!("default k must be >= 2, got {}", self.default_k));
        }
        Ok(())
    }

    /// Validate, then run the full training pipeline.
    pub fn train(self) -> Result<EaseService, EaseError> {
        Ok(self.train_with_artifacts()?.0)
    }

    /// [`EaseServiceBuilder::train`], also returning the profiling records
    /// (for evaluation/enrichment studies).
    pub fn train_with_artifacts(self) -> Result<(EaseService, TrainingArtifacts), EaseError> {
        self.validate()?;
        let meta = ServiceMeta {
            scale: self.cfg.scale,
            seed: self.cfg.seed,
            folds: self.cfg.folds,
            timing: self.cfg.timing,
            default_k: self.default_k,
            default_goal: self.default_goal,
        };
        let (ease, artifacts) = train_ease(&self.cfg);
        Ok((EaseService::from_parts(ease, meta), artifacts))
    }
}

/// Provenance carried alongside the trained models (persisted with them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceMeta {
    pub scale: Scale,
    pub seed: u64,
    pub folds: usize,
    pub timing: TimingMode,
    pub default_k: usize,
    pub default_goal: OptGoal,
}

/// One query of a [`EaseService::recommend_batch`] call.
#[derive(Debug, Clone)]
pub struct RecommendQuery {
    pub props: GraphProperties,
    pub workload: Workload,
    pub k: usize,
    pub goal: OptGoal,
}

/// What to ask a service, independent of how the graph arrives: the
/// workload is required, partition count and optimization goal are
/// optional and resolve against the service's [`ServiceMeta`] defaults
/// *at query time* (so one `Query` value means the same thing against
/// differently-trained services).
///
/// This is the single spelling behind the whole `recommend*` family —
/// pick the entry point by input kind:
/// [`EaseService::recommend_query`] (extracted properties),
/// [`EaseService::recommend_query_graph`] (in-memory graph), or
/// [`EaseService::recommend_query_prepared`] (shared analysis context).
///
/// ```
/// # use ease::Query;
/// # use ease::OptGoal;
/// # use ease_procsim::Workload;
/// let query = Query::new(Workload::PageRank { iterations: 3 })
///     .k(8)
///     .goal(OptGoal::ProcessingOnly);
/// assert_eq!(query.partitions(), Some(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    workload: Workload,
    k: Option<usize>,
    goal: Option<OptGoal>,
}

impl Query {
    /// A query for `workload` at the service's default partition count
    /// and optimization goal.
    pub fn new(workload: Workload) -> Query {
        Query { workload, k: None, goal: None }
    }

    /// Ask for an explicit partition count instead of the service default.
    pub fn k(mut self, k: usize) -> Query {
        self.k = Some(k);
        self
    }

    /// Ask for an explicit optimization goal instead of the service
    /// default.
    pub fn goal(mut self, goal: OptGoal) -> Query {
        self.goal = Some(goal);
        self
    }

    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The explicit partition count, if one was set with [`Query::k`].
    pub fn partitions(&self) -> Option<usize> {
        self.k
    }

    /// The explicit goal, if one was set with [`Query::goal`].
    pub fn opt_goal(&self) -> Option<OptGoal> {
        self.goal
    }

    /// Resolve the optional fields against a service's defaults.
    fn resolve(&self, meta: &ServiceMeta) -> (Workload, usize, OptGoal) {
        (self.workload, self.k.unwrap_or(meta.default_k), self.goal.unwrap_or(meta.default_goal))
    }
}

/// Human-readable summary of a trained service (the `ease inspect` view).
#[derive(Debug, Clone)]
pub struct ServiceInfo {
    pub meta: ServiceMeta,
    pub tier: PropertyTier,
    pub catalog: Vec<PartitionerId>,
    pub workloads: Vec<&'static str>,
    /// `(component, winning config description, CV MAPE)` per model.
    pub chosen: Vec<(String, String, f64)>,
}

/// Default capacity of the query-side property cache: graph properties are
/// a few hundred bytes, so even a generous window of recently seen graphs
/// costs nothing against the model weights it sits next to.
pub const PROPERTY_CACHE_CAPACITY: usize = 64;

/// Fingerprint-keyed LRU of advanced-tier graph properties. Guarded by one
/// mutex — a hit is a linear scan over ≤ capacity u64 keys plus a small
/// clone, orders of magnitude below one triangle counting pass.
struct PropertyCache {
    capacity: usize,
    /// Most recently used at the back.
    entries: Vec<(u64, GraphProperties)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PropertyCache {
    fn new(capacity: usize) -> Self {
        PropertyCache { capacity, entries: Vec::new(), hits: 0, misses: 0, evictions: 0 }
    }

    fn get(&mut self, key: u64) -> Option<GraphProperties> {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(pos) => {
                let entry = self.entries.remove(pos);
                let props = entry.1.clone();
                self.entries.push(entry);
                self.hits += 1;
                Some(props)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// [`PropertyCache::get`] minus the miss accounting: a hit counts, a
    /// miss records nothing. This backs the daemon's stat-memo fast path,
    /// which falls back to the full open-and-extract lookup on a probe
    /// miss — *that* lookup records the miss, keeping `hits + misses` at
    /// exactly one per query either way.
    fn probe(&mut self, key: u64) -> Option<GraphProperties> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let props = entry.1.clone();
        self.entries.push(entry);
        self.hits += 1;
        Some(props)
    }

    fn insert(&mut self, key: u64, props: GraphProperties) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, props));
    }
}

/// Observability snapshot of the query-side property cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyCacheStats {
    pub hits: u64,
    pub misses: u64,
    /// LRU entries displaced by capacity pressure since the service was
    /// constructed (re-inserting an existing key never evicts).
    pub evictions: u64,
    pub len: usize,
    pub capacity: usize,
}

/// A trained, persistable, query-oriented partitioner-selection service.
pub struct EaseService {
    ease: Ease,
    meta: ServiceMeta,
    /// Query-side LRU keyed by [`PreparedGraph::fingerprint`]. Persisted
    /// alongside the models (format v2), so a restarted service answers
    /// warm for every graph it had already extracted.
    props_cache: Mutex<PropertyCache>,
}

impl std::fmt::Debug for EaseService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EaseService")
            .field("meta", &self.meta)
            .field("catalog", &self.ease.catalog)
            .field("workloads", &self.supported_workloads())
            .field("property_cache", &self.property_cache_stats())
            .finish_non_exhaustive()
    }
}

impl EaseService {
    /// Wrap an already-trained [`Ease`] system.
    pub fn from_parts(ease: Ease, meta: ServiceMeta) -> Self {
        EaseService {
            ease,
            meta,
            props_cache: Mutex::new(PropertyCache::new(PROPERTY_CACHE_CAPACITY)),
        }
    }

    /// The underlying predictor stack (evaluation studies, reports).
    pub fn ease(&self) -> &Ease {
        &self.ease
    }

    /// Take ownership of the underlying predictor stack (enrichment
    /// studies that swap components).
    pub fn into_ease(self) -> Ease {
        self.ease
    }

    pub fn meta(&self) -> &ServiceMeta {
        &self.meta
    }

    pub fn catalog(&self) -> &[PartitionerId] {
        &self.ease.catalog
    }

    /// Workload names this service can answer for.
    pub fn supported_workloads(&self) -> Vec<&'static str> {
        self.ease.processing_time.supported_workloads()
    }

    /// Answer a [`Query`] from already-extracted properties — the core
    /// entry the whole `recommend*` family funnels through. Unset query
    /// fields resolve against [`ServiceMeta`] here, at answer time.
    ///
    /// Returns the full predicted ranking; [`EaseError::UnsupportedWorkload`]
    /// if the service was never trained on the query's workload.
    pub fn recommend_query(
        &self,
        props: &GraphProperties,
        query: Query,
    ) -> Result<Selection, EaseError> {
        let (workload, k, goal) = query.resolve(&self.meta);
        self.ease.try_select(props, workload, k, goal)
    }

    /// Answer a [`Query`] straight from an in-memory graph: advanced-tier
    /// properties come from the fingerprint-keyed LRU cache when this
    /// graph (by content) was queried before, so repeated queries skip
    /// extraction entirely — hashing the edge list is the only per-query
    /// `O(|E|)` work.
    pub fn recommend_query_graph(
        &self,
        graph: &Graph,
        query: Query,
    ) -> Result<Selection, EaseError> {
        self.recommend_query_prepared(&PreparedGraph::of(graph), query)
    }

    /// Answer a [`Query`] from a shared [`PreparedGraph`] analysis context
    /// — the ingestion-agnostic entry: the context may wrap an in-memory
    /// graph, a memory-mapped `.bel` file, or a streamed text edge list,
    /// and the recommendation is bit-identical across all of them. No
    /// owned `Vec<Edge>` is materialized for source-backed contexts.
    pub fn recommend_query_prepared(
        &self,
        prepared: &PreparedGraph<'_>,
        query: Query,
    ) -> Result<Selection, EaseError> {
        let props = self.cached_properties_prepared(prepared);
        self.recommend_query(&props, query)
    }

    /// Recommend a partitioner at the service's default partition count.
    /// Thin wrapper over [`EaseService::recommend_query`].
    pub fn recommend(
        &self,
        props: &GraphProperties,
        workload: Workload,
        goal: OptGoal,
    ) -> Result<Selection, EaseError> {
        self.recommend_query(props, Query::new(workload).goal(goal))
    }

    /// [`EaseService::recommend`] with an explicit partition count.
    pub fn recommend_with_k(
        &self,
        props: &GraphProperties,
        workload: Workload,
        k: usize,
        goal: OptGoal,
    ) -> Result<Selection, EaseError> {
        self.recommend_query(props, Query::new(workload).k(k).goal(goal))
    }

    /// Recommend straight from a graph at the service's default partition
    /// count. Thin wrapper over [`EaseService::recommend_query_graph`].
    pub fn recommend_graph(
        &self,
        graph: &Graph,
        workload: Workload,
        goal: OptGoal,
    ) -> Result<Selection, EaseError> {
        self.recommend_query_graph(graph, Query::new(workload).goal(goal))
    }

    /// [`EaseService::recommend_graph`] with an explicit partition count.
    pub fn recommend_graph_with_k(
        &self,
        graph: &Graph,
        workload: Workload,
        k: usize,
        goal: OptGoal,
    ) -> Result<Selection, EaseError> {
        self.recommend_query_graph(graph, Query::new(workload).k(k).goal(goal))
    }

    /// Recommend from a shared analysis context at the service's default
    /// partition count. Thin wrapper over
    /// [`EaseService::recommend_query_prepared`].
    pub fn recommend_prepared(
        &self,
        prepared: &PreparedGraph<'_>,
        workload: Workload,
        goal: OptGoal,
    ) -> Result<Selection, EaseError> {
        self.recommend_query_prepared(prepared, Query::new(workload).goal(goal))
    }

    /// [`EaseService::recommend_prepared`] with an explicit partition count.
    pub fn recommend_prepared_with_k(
        &self,
        prepared: &PreparedGraph<'_>,
        workload: Workload,
        k: usize,
        goal: OptGoal,
    ) -> Result<Selection, EaseError> {
        self.recommend_query_prepared(prepared, Query::new(workload).k(k).goal(goal))
    }

    /// Advanced-tier properties of `graph`, served from the query-side LRU
    /// when its content fingerprint was seen before.
    pub fn cached_properties(&self, graph: &Graph) -> GraphProperties {
        self.cached_properties_prepared(&PreparedGraph::of(graph))
    }

    /// [`EaseService::cached_properties`] over a shared analysis context.
    /// Extraction (the miss path) runs outside the cache lock; concurrent
    /// first queries on the same graph may both extract, which is wasteful
    /// but correct — the results are identical.
    pub fn cached_properties_prepared(&self, prepared: &PreparedGraph<'_>) -> GraphProperties {
        let key = prepared.fingerprint();
        if let Some(props) =
            self.props_cache.lock().unwrap_or_else(PoisonError::into_inner).get(key)
        {
            return props;
        }
        let props = prepared.properties(PropertyTier::Advanced);
        self.props_cache.lock().unwrap_or_else(PoisonError::into_inner).insert(key, props.clone());
        props
    }

    /// Probe the property cache by an already-known content fingerprint,
    /// without touching the graph itself. This is the serve daemon's fast
    /// path: its stat-keyed memo maps an unchanged graph *file* to the
    /// fingerprint it hashed last time, and this probe turns that into
    /// cached properties with zero `O(|E|)` work. Returns `None` (recorded
    /// as neither hit nor miss) when the entry was evicted — the caller
    /// re-extracts through [`EaseService::cached_properties_prepared`],
    /// which records the miss.
    pub fn try_cached_properties(&self, fingerprint: u64) -> Option<GraphProperties> {
        self.props_cache.lock().unwrap_or_else(PoisonError::into_inner).probe(fingerprint)
    }

    /// Hit/miss/occupancy counters of the property cache.
    pub fn property_cache_stats(&self) -> PropertyCacheStats {
        let cache = self.props_cache.lock().unwrap_or_else(PoisonError::into_inner);
        PropertyCacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            len: cache.entries.len(),
            capacity: cache.capacity,
        }
    }

    /// Answer many queries concurrently: the queries fan out over
    /// `std::thread` workers sharing the trained models behind `&self`.
    /// Results come back in query order; each query fails independently.
    pub fn recommend_batch(&self, queries: &[RecommendQuery]) -> Vec<Result<Selection, EaseError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let workers =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(queries.len());
        if workers <= 1 {
            return queries
                .iter()
                .map(|q| self.recommend_with_k(&q.props, q.workload, q.k, q.goal))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Result<Selection, EaseError>)>> =
            Mutex::new(Vec::with_capacity(queries.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // lint: relaxed-ok(work ticket counter; results are ordered after the scope join)
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= queries.len() {
                        break;
                    }
                    // lint: panic-ok(idx was bounds-checked against queries.len() just above)
                    let q = &queries[idx];
                    let sel = self.recommend_with_k(&q.props, q.workload, q.k, q.goal);
                    results.lock().unwrap_or_else(PoisonError::into_inner).push((idx, sel));
                });
            }
        });
        let mut out = results.into_inner().unwrap_or_else(PoisonError::into_inner);
        out.sort_by_key(|(idx, _)| *idx);
        out.into_iter().map(|(_, sel)| sel).collect()
    }

    /// Summarize the trained service for reporting (`ease inspect`).
    pub fn info(&self) -> ServiceInfo {
        let mut chosen = Vec::new();
        for (target, c) in &self.ease.quality.chosen {
            chosen.push((format!("quality/{}", target.name()), c.config.describe(), c.cv_mape));
        }
        let pt = &self.ease.partitioning_time.chosen;
        chosen.push(("partitioning-time".to_string(), pt.config.describe(), pt.cv_mape));
        for (name, c) in &self.ease.processing_time.chosen {
            chosen.push((format!("processing/{name}"), c.config.describe(), c.cv_mape));
        }
        ServiceInfo {
            meta: self.meta,
            tier: self.ease.quality.tier,
            catalog: self.ease.catalog.clone(),
            workloads: self.supported_workloads(),
            chosen,
        }
    }

    // -----------------------------------------------------------------
    // Persistence
    // -----------------------------------------------------------------

    /// Serialize the whole trained service (models + provenance) into the
    /// versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        write_header(&mut w);
        // provenance
        w.put_str(self.meta.scale.name());
        w.put_u64(self.meta.seed);
        w.put_usize(self.meta.folds);
        w.put_u8(match self.meta.timing {
            TimingMode::Measured => 0,
            TimingMode::Deterministic => 1,
        });
        w.put_usize(self.meta.default_k);
        w.put_u8(match self.meta.default_goal {
            OptGoal::EndToEnd => 0,
            OptGoal::ProcessingOnly => 1,
        });
        // catalog
        w.put_usize(self.ease.catalog.len());
        for p in &self.ease.catalog {
            w.put_u8(p.index() as u8);
        }
        // quality predictor
        let qp = self.ease.quality.to_params();
        w.put_u8(tier_tag(qp.tier));
        w.put_usize(qp.targets.len());
        for (target, c, model) in &qp.targets {
            w.put_u8(target_tag(*target));
            put_chosen(&mut w, c);
            encode_model(&mut w, model);
        }
        // partitioning-time predictor
        let tp = self.ease.partitioning_time.to_params();
        put_chosen(&mut w, &tp.chosen);
        encode_model(&mut w, &tp.model);
        // processing-time predictor
        let pp = self.ease.processing_time.to_params();
        w.put_usize(pp.workloads.len());
        for (name, c, model) in &pp.workloads {
            w.put_str(name);
            put_chosen(&mut w, c);
            encode_model(&mut w, model);
        }
        // property-cache trailer (format v2): fingerprint-keyed extracted
        // properties in LRU order, so a reloaded service answers warm
        let cache = self.props_cache.lock().unwrap_or_else(PoisonError::into_inner);
        w.put_usize(cache.entries.len());
        for (key, props) in &cache.entries {
            w.put_u64(*key);
            put_props(&mut w, props);
        }
        w.into_bytes()
    }

    /// Deserialize a service persisted by [`EaseService::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EaseError> {
        let mut r = Reader::new(bytes);
        let version = read_header(&mut r)?;
        // provenance
        let scale_name = r.take_str()?;
        let scale = Scale::parse(&scale_name).ok_or_else(|| {
            PersistError::Corrupt(format!("unknown persisted scale `{scale_name}`"))
        })?;
        let seed = r.take_u64()?;
        let folds = r.take_usize()?;
        let timing = match r.take_u8()? {
            0 => TimingMode::Measured,
            1 => TimingMode::Deterministic,
            other => {
                return Err(PersistError::Corrupt(format!("unknown timing tag {other}")).into())
            }
        };
        let default_k = r.take_usize()?;
        let default_goal = match r.take_u8()? {
            0 => OptGoal::EndToEnd,
            1 => OptGoal::ProcessingOnly,
            other => return Err(PersistError::Corrupt(format!("unknown goal tag {other}")).into()),
        };
        // catalog
        let n_catalog = r.take_usize()?;
        if n_catalog > PartitionerId::ALL.len() {
            return Err(PersistError::Corrupt(format!(
                "catalog of {n_catalog} exceeds the {} known partitioners",
                PartitionerId::ALL.len()
            ))
            .into());
        }
        let mut catalog = Vec::with_capacity(n_catalog);
        for _ in 0..n_catalog {
            catalog.push(partitioner_from_tag(r.take_u8()?)?);
        }
        // quality predictor
        let tier = tier_from_tag(r.take_u8()?)?;
        let n_targets = r.take_usize()?;
        if n_targets > QualityTarget::ALL.len() {
            return Err(
                PersistError::Corrupt(format!("{n_targets} quality targets declared")).into()
            );
        }
        let mut targets = Vec::with_capacity(n_targets);
        for _ in 0..n_targets {
            let target = target_from_tag(r.take_u8()?)?;
            let chosen = take_chosen(&mut r)?;
            let model = decode_model(&mut r)?;
            targets.push((target, chosen, model));
        }
        let quality = QualityPredictor::from_params(QualityPredictorParams { tier, targets })?;
        // partitioning-time predictor
        let chosen = take_chosen(&mut r)?;
        let model = decode_model(&mut r)?;
        let partitioning_time =
            PartitioningTimePredictor::from_params(PartitioningTimePredictorParams {
                chosen,
                model,
            })?;
        // processing-time predictor
        let n_workloads = r.take_usize()?;
        if n_workloads > 64 {
            return Err(PersistError::Corrupt(format!("{n_workloads} workloads declared")).into());
        }
        let mut workloads = Vec::with_capacity(n_workloads);
        for _ in 0..n_workloads {
            let name = r.take_str()?;
            let chosen = take_chosen(&mut r)?;
            let model = decode_model(&mut r)?;
            workloads.push((name, chosen, model));
        }
        let processing_time =
            ProcessingTimePredictor::from_params(ProcessingTimePredictorParams { workloads })?;
        // property-cache trailer (absent in v1 files: those start cold)
        let mut warm: Vec<(u64, GraphProperties)> = Vec::new();
        if version >= 2 {
            let n_cached = r.take_usize()?;
            if n_cached > PROPERTY_CACHE_CAPACITY {
                return Err(PersistError::Corrupt(format!(
                    "{n_cached} cached property entries exceed the cache capacity \
                     ({PROPERTY_CACHE_CAPACITY})"
                ))
                .into());
            }
            for _ in 0..n_cached {
                let key = r.take_u64()?;
                warm.push((key, take_props(&mut r)?));
            }
        }
        if r.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after the service payload",
                r.remaining()
            ))
            .into());
        }
        let mut ease = Ease::new(quality, partitioning_time, processing_time);
        ease.catalog = catalog;
        let meta = ServiceMeta { scale, seed, folds, timing, default_k, default_goal };
        let service = EaseService::from_parts(ease, meta);
        {
            let mut cache = service.props_cache.lock().unwrap_or_else(PoisonError::into_inner);
            for (key, props) in warm {
                cache.insert(key, props);
            }
        }
        Ok(service)
    }

    /// Persist the trained service to disk (atomic: write to a sibling
    /// temp file, then rename). The temp name appends to the full file
    /// name — never replaces the extension — and carries the pid, so
    /// concurrent saves of sibling artifacts cannot clobber each other.
    pub fn save(&self, path: &Path) -> Result<(), EaseError> {
        let bytes = self.to_bytes();
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(format!(".{}.tmp", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp_name);
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    /// Load a service persisted by [`EaseService::save`].
    pub fn load(path: &Path) -> Result<Self, EaseError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

// ---------------------------------------------------------------------
// Small enum codecs
// ---------------------------------------------------------------------

fn tier_tag(tier: PropertyTier) -> u8 {
    match tier {
        PropertyTier::Simple => 0,
        PropertyTier::Basic => 1,
        PropertyTier::Advanced => 2,
    }
}

fn tier_from_tag(tag: u8) -> Result<PropertyTier, PersistError> {
    match tag {
        0 => Ok(PropertyTier::Simple),
        1 => Ok(PropertyTier::Basic),
        2 => Ok(PropertyTier::Advanced),
        other => Err(PersistError::Corrupt(format!("unknown property tier tag {other}"))),
    }
}

fn target_tag(target: QualityTarget) -> u8 {
    // lint: panic-ok(every QualityTarget variant is in ALL by construction)
    QualityTarget::ALL.iter().position(|&t| t == target).expect("target in ALL") as u8
}

fn target_from_tag(tag: u8) -> Result<QualityTarget, PersistError> {
    QualityTarget::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| PersistError::Corrupt(format!("unknown quality target tag {tag}")))
}

fn partitioner_from_tag(tag: u8) -> Result<PartitionerId, PersistError> {
    PartitionerId::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| PersistError::Corrupt(format!("unknown partitioner tag {tag}")))
}

fn put_chosen(w: &mut Writer, c: &ChosenModel) {
    encode_config(w, &c.config);
    w.put_f64(c.cv_mape);
}

fn take_chosen(r: &mut Reader) -> Result<ChosenModel, PersistError> {
    Ok(ChosenModel { config: decode_config(r)?, cv_mape: r.take_f64()? })
}

/// Encode extracted graph properties for the cache trailer. `f64`s go as
/// raw bits, so a warm-restarted cache serves byte-identical answers.
fn put_props(w: &mut Writer, p: &GraphProperties) {
    w.put_usize(p.num_vertices);
    w.put_usize(p.num_edges);
    w.put_f64(p.density);
    w.put_f64(p.mean_degree);
    w.put_f64(p.in_degree_skew);
    w.put_f64(p.out_degree_skew);
    let mut put_opt = |v: Option<f64>| match v {
        Some(x) => {
            w.put_u8(1);
            w.put_f64(x);
        }
        None => w.put_u8(0),
    };
    put_opt(p.avg_triangles);
    put_opt(p.avg_lcc);
}

fn take_props(r: &mut Reader) -> Result<GraphProperties, PersistError> {
    let num_vertices = r.take_usize()?;
    let num_edges = r.take_usize()?;
    let density = r.take_f64()?;
    let mean_degree = r.take_f64()?;
    let in_degree_skew = r.take_f64()?;
    let out_degree_skew = r.take_f64()?;
    let take_opt = |r: &mut Reader| -> Result<Option<f64>, PersistError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(r.take_f64()?)),
            other => Err(PersistError::Corrupt(format!("unknown option tag {other}"))),
        }
    };
    let avg_triangles = take_opt(r)?;
    let avg_lcc = take_opt(r)?;
    Ok(GraphProperties {
        num_vertices,
        num_edges,
        density,
        mean_degree,
        in_degree_skew,
        out_degree_skew,
        avg_triangles,
        avg_lcc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graphgen::realworld::socfb_analogue;

    fn tiny_builder() -> EaseServiceBuilder {
        EaseServiceBuilder::at_scale(Scale::Tiny)
            .quick_grid()
            .max_small_graphs(Some(6))
            .max_large_graphs(Some(4))
            .partition_counts(vec![2, 4])
            .partitioners(vec![PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne])
            .workloads(vec![Workload::PageRank { iterations: 3 }, Workload::ConnectedComponents])
            .folds(2)
            .timing(TimingMode::Deterministic)
    }

    #[test]
    fn builder_validation_catches_bad_configs() {
        let invalid = |b: EaseServiceBuilder| {
            assert!(matches!(b.train().unwrap_err(), EaseError::InvalidConfig(_)));
        };
        invalid(tiny_builder().folds(1));
        invalid(tiny_builder().model_grid(vec![]));
        invalid(tiny_builder().partition_counts(vec![]));
        invalid(tiny_builder().partition_counts(vec![1]));
        invalid(tiny_builder().partitioners(vec![]));
        invalid(tiny_builder().workloads(vec![]));
        invalid(tiny_builder().max_small_graphs(Some(0)));
        invalid(tiny_builder().processing_k(1));
    }

    #[test]
    fn trained_service_answers_and_rejects_unknown_workloads() {
        let service = tiny_builder().train().unwrap();
        let props = GraphProperties::compute_advanced(&socfb_analogue(Scale::Tiny, 3).graph);
        let sel = service
            .recommend(&props, Workload::PageRank { iterations: 3 }, OptGoal::EndToEnd)
            .unwrap();
        assert_eq!(sel.candidates.len(), 3);
        assert!(service.catalog().contains(&sel.best));
        // never trained on k-cores -> typed error, not a panic
        let err = service.recommend(&props, Workload::KCores, OptGoal::EndToEnd).unwrap_err();
        match err {
            EaseError::UnsupportedWorkload { requested, supported } => {
                assert_eq!(requested, "kcores");
                assert!(supported.contains(&"pr".to_string()));
            }
            other => panic!("expected UnsupportedWorkload, got {other:?}"),
        }
    }

    #[test]
    fn query_builder_resolves_service_defaults_and_matches_wrappers() {
        let service = tiny_builder().train().unwrap();
        let graph = socfb_analogue(Scale::Tiny, 3).graph;
        let props = GraphProperties::compute_advanced(&graph);
        let workload = Workload::PageRank { iterations: 3 };

        // unset fields resolve to the trained defaults at answer time
        let bare = service.recommend_query(&props, Query::new(workload)).unwrap();
        let explicit = service
            .recommend_with_k(
                &props,
                workload,
                service.meta().default_k,
                service.meta().default_goal,
            )
            .unwrap();
        assert_eq!(bare.best, explicit.best);
        for (a, b) in bare.candidates.iter().zip(&explicit.candidates) {
            assert_eq!(a.end_to_end_secs.to_bits(), b.end_to_end_secs.to_bits());
        }

        // explicit fields win, and every wrapper funnels through the same
        // builder path — the three input kinds agree bit-for-bit
        let query = Query::new(workload).k(2).goal(OptGoal::ProcessingOnly);
        assert_eq!(query.partitions(), Some(2));
        assert_eq!(query.opt_goal(), Some(OptGoal::ProcessingOnly));
        let by_props = service.recommend_query(&props, query).unwrap();
        let by_graph = service.recommend_query_graph(&graph, query).unwrap();
        let by_prepared =
            service.recommend_query_prepared(&PreparedGraph::of(&graph), query).unwrap();
        let wrapper =
            service.recommend_with_k(&props, workload, 2, OptGoal::ProcessingOnly).unwrap();
        assert_eq!(by_props.best, wrapper.best);
        assert_eq!(by_graph.best, wrapper.best);
        assert_eq!(by_prepared.best, wrapper.best);
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let service = tiny_builder().train().unwrap();
        let queries: Vec<RecommendQuery> = (0..24)
            .map(|i| RecommendQuery {
                props: GraphProperties::compute_advanced(
                    &socfb_analogue(Scale::Tiny, 100 + i).graph,
                ),
                workload: if i % 2 == 0 {
                    Workload::PageRank { iterations: 3 }
                } else {
                    Workload::ConnectedComponents
                },
                k: if i % 3 == 0 { 2 } else { 4 },
                goal: if i % 2 == 0 { OptGoal::EndToEnd } else { OptGoal::ProcessingOnly },
            })
            .collect();
        let batch = service.recommend_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            let s = service.recommend_with_k(&q.props, q.workload, q.k, q.goal).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(s.best, b.best);
            for (cs, cb) in s.candidates.iter().zip(&b.candidates) {
                assert_eq!(cs.end_to_end_secs.to_bits(), cb.end_to_end_secs.to_bits());
            }
        }
    }

    #[test]
    fn batch_failures_are_per_query() {
        let service = tiny_builder().train().unwrap();
        let props = GraphProperties::compute_advanced(&socfb_analogue(Scale::Tiny, 9).graph);
        let queries = vec![
            RecommendQuery {
                props: props.clone(),
                workload: Workload::PageRank { iterations: 3 },
                k: 4,
                goal: OptGoal::EndToEnd,
            },
            RecommendQuery {
                props,
                workload: Workload::KCores, // untrained
                k: 4,
                goal: OptGoal::EndToEnd,
            },
        ];
        let out = service.recommend_batch(&queries);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(EaseError::UnsupportedWorkload { .. })));
    }

    #[test]
    fn service_round_trips_through_bytes_bit_exactly() {
        let service = tiny_builder().train().unwrap();
        let bytes = service.to_bytes();
        let restored = EaseService::from_bytes(&bytes).unwrap();
        assert_eq!(restored.meta(), service.meta());
        assert_eq!(restored.catalog(), service.catalog());
        assert_eq!(restored.supported_workloads(), service.supported_workloads());
        for seed in [5, 6, 7] {
            let props = GraphProperties::compute_advanced(&socfb_analogue(Scale::Tiny, seed).graph);
            for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
                let a =
                    service.recommend(&props, Workload::PageRank { iterations: 3 }, goal).unwrap();
                let b =
                    restored.recommend(&props, Workload::PageRank { iterations: 3 }, goal).unwrap();
                assert_eq!(a.best, b.best);
                for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
                    assert_eq!(ca.partitioning_secs.to_bits(), cb.partitioning_secs.to_bits());
                    assert_eq!(ca.processing_secs.to_bits(), cb.processing_secs.to_bits());
                }
            }
        }
    }

    #[test]
    fn corrupted_and_truncated_payloads_are_typed_errors() {
        let service = tiny_builder().train().unwrap();
        let bytes = service.to_bytes();
        // flipped magic
        let mut bad = bytes.clone();
        bad[2] ^= 0xFF;
        assert!(matches!(
            EaseService::from_bytes(&bad).unwrap_err(),
            EaseError::Persist(PersistError::BadMagic)
        ));
        // truncation
        assert!(matches!(
            EaseService::from_bytes(&bytes[..bytes.len() / 2]).unwrap_err(),
            EaseError::Persist(_)
        ));
        // trailing garbage
        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            EaseService::from_bytes(&long).unwrap_err(),
            EaseError::Persist(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn recommend_graph_caches_by_content_fingerprint() {
        let service = tiny_builder().train().unwrap();
        let g = socfb_analogue(Scale::Tiny, 21).graph;
        let wl = Workload::PageRank { iterations: 3 };
        let first = service.recommend_graph(&g, wl, OptGoal::EndToEnd).unwrap();
        let stats = service.property_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 1, 1));
        // same content (an independent clone!) -> cache hit, same answer
        let again = service.recommend_graph(&g.clone(), wl, OptGoal::EndToEnd).unwrap();
        assert_eq!(first.best, again.best);
        let stats = service.property_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // a different graph misses
        let other = socfb_analogue(Scale::Tiny, 22).graph;
        service.recommend_graph(&other, wl, OptGoal::EndToEnd).unwrap();
        let stats = service.property_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 2, 2));
        // cached answers are bit-identical to the uncached path
        let direct = service
            .recommend(&GraphProperties::compute_advanced(&g), wl, OptGoal::EndToEnd)
            .unwrap();
        for (a, b) in first.candidates.iter().zip(&direct.candidates) {
            assert_eq!(a.end_to_end_secs.to_bits(), b.end_to_end_secs.to_bits());
        }
    }

    #[test]
    fn property_cache_evicts_least_recently_used() {
        let mut cache = PropertyCache::new(2);
        let props = GraphProperties::compute_advanced(&socfb_analogue(Scale::Tiny, 1).graph);
        cache.insert(1, props.clone());
        cache.insert(2, props.clone());
        assert_eq!(cache.evictions, 0, "filling to capacity evicts nothing");
        assert!(cache.get(1).is_some()); // 1 becomes most recent
        cache.insert(3, props.clone()); // evicts 2
        assert_eq!(cache.evictions, 1);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        // re-inserting an existing key must not evict anyone
        cache.insert(1, props.clone());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.entries.len(), 2);
        assert_eq!(cache.evictions, 1, "refresh of a resident key is not an eviction");
        // every further displacement is counted
        cache.insert(4, props.clone());
        cache.insert(5, props);
        assert_eq!(cache.evictions, 3);
    }

    #[test]
    fn concurrent_recommend_prepared_keeps_cache_stats_coherent() {
        let service = tiny_builder().train().unwrap();
        let graphs: Vec<_> = (0..3).map(|i| socfb_analogue(Scale::Tiny, 60 + i).graph).collect();
        let wl = Workload::PageRank { iterations: 3 };
        const CLIENTS: usize = 8;
        const REQS_PER_CLIENT: usize = 6;
        let baseline: Vec<Selection> = graphs
            .iter()
            .map(|g| {
                service
                    .recommend(&GraphProperties::compute_advanced(g), wl, OptGoal::EndToEnd)
                    .unwrap()
            })
            .collect();
        // reset point: stats after the baseline queries (which bypassed the cache)
        let before = service.property_cache_stats();
        assert_eq!((before.hits, before.misses), (0, 0));
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let service = &service;
                let graphs = &graphs;
                let baseline = &baseline;
                scope.spawn(move || {
                    for r in 0..REQS_PER_CLIENT {
                        let which = (c + r) % graphs.len();
                        let prepared = ease_graph::PreparedGraph::of(&graphs[which]);
                        let sel =
                            service.recommend_prepared(&prepared, wl, OptGoal::EndToEnd).unwrap();
                        assert_eq!(sel.best, baseline[which].best, "client {c} req {r}");
                        for (a, b) in sel.candidates.iter().zip(&baseline[which].candidates) {
                            assert_eq!(a.end_to_end_secs.to_bits(), b.end_to_end_secs.to_bits());
                        }
                    }
                });
            }
        });
        let stats = service.property_cache_stats();
        let total = (CLIENTS * REQS_PER_CLIENT) as u64;
        // exactly one cache lookup per query; a first query per graph misses,
        // and concurrent first queries may race to a redundant (but
        // identical) extraction — misses is bounded by the client count
        assert_eq!(stats.hits + stats.misses, total);
        assert!(stats.misses >= graphs.len() as u64, "each distinct graph misses at least once");
        assert!(stats.misses <= CLIENTS as u64 * graphs.len() as u64);
        assert_eq!(stats.len, graphs.len(), "one resident entry per distinct fingerprint");
        assert_eq!(stats.evictions, 0, "far below capacity: nothing displaced");
    }

    #[test]
    fn persisted_property_cache_makes_restarts_warm() {
        let service = tiny_builder().train().unwrap();
        let g = socfb_analogue(Scale::Tiny, 33).graph;
        let wl = Workload::PageRank { iterations: 3 };
        let first = service.recommend_graph(&g, wl, OptGoal::EndToEnd).unwrap();
        assert_eq!(service.property_cache_stats().misses, 1);
        // save with the warm entry, reload in a "new process"
        let restored = EaseService::from_bytes(&service.to_bytes()).unwrap();
        let stats = restored.property_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 0, 1), "restored warm");
        // the restarted service answers from the persisted cache: a hit, no
        // extraction, and a byte-identical ranking
        let again = restored.recommend_graph(&g, wl, OptGoal::EndToEnd).unwrap();
        let stats = restored.property_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        assert_eq!(first.best, again.best);
        for (a, b) in first.candidates.iter().zip(&again.candidates) {
            assert_eq!(a.end_to_end_secs.to_bits(), b.end_to_end_secs.to_bits());
        }
        // cached properties survive the round trip bit-exactly
        let direct = GraphProperties::compute_advanced(&g);
        let cached = restored.cached_properties(&g);
        assert_eq!(cached, direct);
        // an empty cache round-trips too
        let cold = tiny_builder().train().unwrap();
        let reloaded = EaseService::from_bytes(&cold.to_bytes()).unwrap();
        assert_eq!(reloaded.property_cache_stats().len, 0);
    }

    #[test]
    fn recommend_prepared_matches_recommend_graph() {
        let service = tiny_builder().train().unwrap();
        let g = socfb_analogue(Scale::Tiny, 44).graph;
        let wl = Workload::ConnectedComponents;
        let via_graph = service.recommend_graph(&g, wl, OptGoal::EndToEnd).unwrap();
        let prepared = ease_graph::PreparedGraph::of(&g);
        let via_prepared = service.recommend_prepared(&prepared, wl, OptGoal::EndToEnd).unwrap();
        assert_eq!(via_graph.best, via_prepared.best);
        // second query on the same content hit the cache
        assert!(service.property_cache_stats().hits >= 1);
    }

    #[test]
    fn info_reports_every_trained_component() {
        let service = tiny_builder().train().unwrap();
        let info = service.info();
        // 5 quality targets + 1 partitioning time + 2 workloads
        assert_eq!(info.chosen.len(), 8);
        assert_eq!(info.catalog.len(), 3);
        assert_eq!(info.meta.timing, TimingMode::Deterministic);
        assert!(info.workloads.contains(&"pr") && info.workloads.contains(&"cc"));
    }
}
