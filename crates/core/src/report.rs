//! Plain-text table rendering and CSV output shared by the experiment
//! binaries (each binary prints paper-style rows and mirrors them into
//! `results/*.csv`).

use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Render an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Write rows as CSV (creates parent directories).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "{}", headers.join(","))?;
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        writeln!(w, "{}", escaped.join(","))?;
    }
    w.flush()
}

/// Format a float with 3 decimals (the paper's table precision).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage (paper's Table VIII style: integer percents).
pub fn pct(v: f64) -> String {
    format!("{:.0}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(
            "T",
            &["name", "value"],
            &[vec!["a".into(), "1.000".into()], vec!["longer-name".into(), "2".into()]],
        );
        assert!(s.contains("== T =="));
        assert!(s.contains("longer-name"));
        // header row padded at least as wide as the longest cell
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("name"));
    }

    #[test]
    fn csv_escaping() {
        let dir = std::env::temp_dir().join(format!("ease_report_{}", std::process::id()));
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["x,y".into(), "plain".into()]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(text.contains("\"x,y\",plain"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.29612), "0.296");
        assert_eq!(pct(1.02), "102");
    }
}
