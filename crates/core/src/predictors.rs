//! The three prediction components of EASE (paper Fig. 4) and their
//! training (step 4 of Fig. 5): per-component model selection across the
//! six ML families with K-fold cross-validation, then retraining the winner
//! on the full training set.

use crate::features;
use crate::profiling::{ProcessingRecord, QualityRecord};
use ease_graph::{GraphProperties, PropertyTier};
use ease_ml::cv::grid_search;
use ease_ml::persist::{build_regressor, PersistError};
use ease_ml::{Dataset, ModelConfig, ModelParams, Regressor};
use ease_partition::{PartitionerId, QualityMetrics, QualityTarget};
use ease_procsim::Workload;

/// Run-times span orders of magnitude, so the time predictors fit
/// `log1p(secs)` and invert at prediction — a standard MAPE-friendly
/// transform (implementation choice documented in DESIGN.md).
fn to_log(secs: f64) -> f64 {
    secs.max(0.0).ln_1p()
}

fn from_log(value: f64) -> f64 {
    // Models extrapolating far outside the training range can emit negative
    // log-space values; a run-time prediction of exactly zero is physically
    // meaningless (and breaks ratio-based selection), so floor at 1 µs.
    value.exp_m1().max(1e-6)
}

/// Which model won a component's grid search, with its CV score.
#[derive(Debug, Clone)]
pub struct ChosenModel {
    pub config: ModelConfig,
    pub cv_mape: f64,
}

/// Intern a persisted workload name back to the `'static` catalog — backed
/// by [`Workload::from_name`] so a workload added to `ease-procsim` is
/// automatically loadable without touching this crate.
fn intern_workload_name(name: &str) -> Option<&'static str> {
    Workload::from_name(name).map(Workload::name)
}

/// Serialized state of a [`QualityPredictor`]: per quality target, the
/// grid-search provenance and the fitted model.
pub struct QualityPredictorParams {
    pub tier: PropertyTier,
    pub targets: Vec<(QualityTarget, ChosenModel, ModelParams)>,
}

/// Serialized state of a [`PartitioningTimePredictor`].
pub struct PartitioningTimePredictorParams {
    pub chosen: ChosenModel,
    pub model: ModelParams,
}

/// Serialized state of a [`ProcessingTimePredictor`]: one fitted model per
/// workload name.
pub struct ProcessingTimePredictorParams {
    pub workloads: Vec<(String, ChosenModel, ModelParams)>,
}

// ---------------------------------------------------------------------
// PartitioningQualityPredictor
// ---------------------------------------------------------------------

/// Predicts the five partitioning quality metrics for (graph, partitioner,
/// k) triples. One model per target metric, independently selected.
pub struct QualityPredictor {
    pub tier: PropertyTier,
    models: Vec<(QualityTarget, Box<dyn Regressor>)>,
    pub chosen: Vec<(QualityTarget, ChosenModel)>,
}

impl QualityPredictor {
    /// Assemble the training dataset for one quality target.
    pub fn dataset(
        records: &[QualityRecord],
        tier: PropertyTier,
        target: QualityTarget,
    ) -> Dataset {
        let mut ds = Dataset::new(features::quality_feature_names(tier));
        for r in records {
            ds.push(
                &features::quality_row(&r.props, tier, r.k, r.partitioner),
                r.metrics.get(target),
            );
        }
        ds
    }

    /// Grid-search each target's model on the training records (paper:
    /// 5-fold CV), then retrain winners on the full set.
    pub fn train(
        records: &[QualityRecord],
        tier: PropertyTier,
        grid: &[ModelConfig],
        folds: usize,
        seed: u64,
    ) -> Self {
        assert!(!records.is_empty(), "no quality training records");
        let mut models = Vec::new();
        let mut chosen = Vec::new();
        for target in QualityTarget::ALL {
            let ds = Self::dataset(records, tier, target);
            let result = grid_search(grid, &ds, folds, seed);
            let mut model = result.best.build();
            model.fit(&ds.x, &ds.y);
            chosen.push((target, ChosenModel { config: result.best, cv_mape: result.best_score }));
            models.push((target, model));
        }
        QualityPredictor { tier, models, chosen }
    }

    /// Train with a *fixed* model configuration for every target (used by
    /// the enrichment study, which pins RFR per the paper).
    pub fn train_fixed(
        records: &[QualityRecord],
        tier: PropertyTier,
        config: &ModelConfig,
    ) -> Self {
        assert!(!records.is_empty());
        let mut models = Vec::new();
        let mut chosen = Vec::new();
        for target in QualityTarget::ALL {
            let ds = Self::dataset(records, tier, target);
            let mut model = config.build();
            model.fit(&ds.x, &ds.y);
            chosen.push((target, ChosenModel { config: config.clone(), cv_mape: f64::NAN }));
            models.push((target, model));
        }
        QualityPredictor { tier, models, chosen }
    }

    fn model(&self, target: QualityTarget) -> &dyn Regressor {
        self.models
            .iter()
            .find(|(t, _)| *t == target)
            .map(|(_, m)| m.as_ref())
            .expect("model per target")
    }

    /// Predict one metric.
    pub fn predict_target(
        &self,
        target: QualityTarget,
        props: &GraphProperties,
        partitioner: PartitionerId,
        k: usize,
    ) -> f64 {
        let row = features::quality_row(props, self.tier, k, partitioner);
        // quality metrics are ≥ 1 by definition; clamp regressor output
        self.model(target).predict_row(&row).max(1.0)
    }

    /// Predict all five metrics at once.
    pub fn predict(
        &self,
        props: &GraphProperties,
        partitioner: PartitionerId,
        k: usize,
    ) -> QualityMetrics {
        QualityMetrics {
            replication_factor: self.predict_target(
                QualityTarget::ReplicationFactor,
                props,
                partitioner,
                k,
            ),
            edge_balance: self.predict_target(QualityTarget::EdgeBalance, props, partitioner, k),
            vertex_balance: self.predict_target(
                QualityTarget::VertexBalance,
                props,
                partitioner,
                k,
            ),
            source_balance: self.predict_target(
                QualityTarget::SourceBalance,
                props,
                partitioner,
                k,
            ),
            dest_balance: self.predict_target(QualityTarget::DestBalance, props, partitioner, k),
        }
    }

    /// Feature importances of the replication-factor model, if available.
    pub fn importances(&self, target: QualityTarget) -> Option<Vec<f64>> {
        self.model(target).feature_importances()
    }

    /// Snapshot the trained state for persistence.
    pub fn to_params(&self) -> QualityPredictorParams {
        QualityPredictorParams {
            tier: self.tier,
            targets: self
                .models
                .iter()
                .zip(&self.chosen)
                .map(|((t, m), (_, c))| (*t, c.clone(), m.to_params()))
                .collect(),
        }
    }

    /// Rebuild a trained predictor from persisted state.
    pub fn from_params(params: QualityPredictorParams) -> Result<Self, PersistError> {
        if params.targets.len() != QualityTarget::ALL.len() {
            return Err(PersistError::Corrupt(format!(
                "quality predictor carries {} targets, expected {}",
                params.targets.len(),
                QualityTarget::ALL.len()
            )));
        }
        let mut models = Vec::new();
        let mut chosen = Vec::new();
        for (target, c, model_params) in params.targets {
            models.push((target, build_regressor(model_params)?));
            chosen.push((target, c));
        }
        for target in QualityTarget::ALL {
            if !models.iter().any(|(t, _)| *t == target) {
                return Err(PersistError::Corrupt(format!(
                    "quality predictor is missing target {}",
                    target.name()
                )));
            }
        }
        Ok(QualityPredictor { tier: params.tier, models, chosen })
    }
}

// ---------------------------------------------------------------------
// PartitioningTimePredictor
// ---------------------------------------------------------------------

/// Predicts partitioning wall-clock time for (graph, partitioner) pairs.
pub struct PartitioningTimePredictor {
    model: Box<dyn Regressor>,
    pub chosen: ChosenModel,
}

impl PartitioningTimePredictor {
    pub fn dataset(records: &[QualityRecord]) -> Dataset {
        let mut ds = Dataset::new(features::partitioning_time_feature_names());
        for r in records {
            ds.push(
                &features::partitioning_time_row(&r.props, r.partitioner),
                to_log(r.partitioning_secs),
            );
        }
        ds
    }

    pub fn train(records: &[QualityRecord], grid: &[ModelConfig], folds: usize, seed: u64) -> Self {
        assert!(!records.is_empty(), "no partitioning-time records");
        let ds = Self::dataset(records);
        let result = grid_search(grid, &ds, folds, seed);
        let mut model = result.best.build();
        model.fit(&ds.x, &ds.y);
        PartitioningTimePredictor {
            model,
            chosen: ChosenModel { config: result.best, cv_mape: result.best_score },
        }
    }

    pub fn predict(&self, props: &GraphProperties, partitioner: PartitionerId) -> f64 {
        let row = features::partitioning_time_row(props, partitioner);
        from_log(self.model.predict_row(&row))
    }

    /// Snapshot the trained state for persistence.
    pub fn to_params(&self) -> PartitioningTimePredictorParams {
        PartitioningTimePredictorParams {
            chosen: self.chosen.clone(),
            model: self.model.to_params(),
        }
    }

    /// Rebuild a trained predictor from persisted state.
    pub fn from_params(params: PartitioningTimePredictorParams) -> Result<Self, PersistError> {
        Ok(PartitioningTimePredictor {
            model: build_regressor(params.model)?,
            chosen: params.chosen,
        })
    }
}

// ---------------------------------------------------------------------
// ProcessingTimePredictor
// ---------------------------------------------------------------------

/// Predicts processing run-time per workload. One independent model per
/// graph processing algorithm — the paper's design choice that lets new
/// algorithms join without retraining anything else (Sec. IV-E).
pub struct ProcessingTimePredictor {
    models: Vec<(&'static str, Box<dyn Regressor>)>,
    pub chosen: Vec<(&'static str, ChosenModel)>,
}

impl ProcessingTimePredictor {
    /// Dataset for one workload.
    pub fn dataset(records: &[ProcessingRecord], workload_name: &str) -> Dataset {
        let mut ds = Dataset::new(features::processing_time_feature_names());
        for r in records.iter().filter(|r| r.workload.name() == workload_name) {
            let iters = r.workload.fixed_iterations().unwrap_or(0);
            ds.push(
                &features::processing_time_row(&r.props, &r.metrics, iters),
                to_log(r.target_secs),
            );
        }
        ds
    }

    pub fn train(
        records: &[ProcessingRecord],
        grid: &[ModelConfig],
        folds: usize,
        seed: u64,
    ) -> Self {
        assert!(!records.is_empty(), "no processing records");
        let mut names: Vec<&'static str> = Vec::new();
        for r in records {
            if !names.contains(&r.workload.name()) {
                names.push(r.workload.name());
            }
        }
        let mut models = Vec::new();
        let mut chosen = Vec::new();
        for name in names {
            let ds = Self::dataset(records, name);
            let result = grid_search(grid, &ds, folds, seed);
            let mut model = result.best.build();
            model.fit(&ds.x, &ds.y);
            chosen.push((name, ChosenModel { config: result.best, cv_mape: result.best_score }));
            models.push((name, model));
        }
        ProcessingTimePredictor { models, chosen }
    }

    /// Predict the target metric (avg-iteration or total seconds) for a
    /// workload given predicted/measured quality metrics, or `None` when no
    /// model was trained for the workload (the typed-error path the
    /// `EaseService` surfaces as `EaseError::UnsupportedWorkload`).
    pub fn try_predict_target(
        &self,
        workload: Workload,
        props: &GraphProperties,
        metrics: &QualityMetrics,
    ) -> Option<f64> {
        let model =
            self.models.iter().find(|(n, _)| *n == workload.name()).map(|(_, m)| m.as_ref())?;
        let iters = workload.fixed_iterations().unwrap_or(0);
        let row = features::processing_time_row(props, metrics, iters);
        Some(from_log(model.predict_row(&row)))
    }

    /// Predict the target metric (avg-iteration or total seconds) for a
    /// workload given predicted/measured quality metrics.
    pub fn predict_target(
        &self,
        workload: Workload,
        props: &GraphProperties,
        metrics: &QualityMetrics,
    ) -> f64 {
        self.try_predict_target(workload, props, metrics)
            .unwrap_or_else(|| panic!("no model trained for workload {}", workload.name()))
    }

    /// Predict the *total* processing time for a workload.
    pub fn predict_total(
        &self,
        workload: Workload,
        props: &GraphProperties,
        metrics: &QualityMetrics,
    ) -> f64 {
        workload.total_from_target(self.predict_target(workload, props, metrics))
    }

    pub fn supported_workloads(&self) -> Vec<&'static str> {
        self.models.iter().map(|(n, _)| *n).collect()
    }

    /// Allocation-free membership check (per-query hot path).
    pub fn supports(&self, workload: Workload) -> bool {
        self.models.iter().any(|(n, _)| *n == workload.name())
    }

    /// Snapshot the trained state for persistence.
    pub fn to_params(&self) -> ProcessingTimePredictorParams {
        ProcessingTimePredictorParams {
            workloads: self
                .models
                .iter()
                .zip(&self.chosen)
                .map(|((n, m), (_, c))| (n.to_string(), c.clone(), m.to_params()))
                .collect(),
        }
    }

    /// Rebuild a trained predictor from persisted state. Workload names are
    /// interned back to the known `'static` catalog; an unknown name means
    /// the artifact was written by an incompatible build.
    pub fn from_params(params: ProcessingTimePredictorParams) -> Result<Self, PersistError> {
        if params.workloads.is_empty() {
            return Err(PersistError::Corrupt("processing predictor has no workloads".into()));
        }
        let mut models = Vec::new();
        let mut chosen = Vec::new();
        for (name, c, model_params) in params.workloads {
            let interned = intern_workload_name(&name).ok_or_else(|| {
                PersistError::Corrupt(format!("unknown persisted workload `{name}`"))
            })?;
            models.push((interned, build_regressor(model_params)?));
            chosen.push((interned, c));
        }
        Ok(ProcessingTimePredictor { models, chosen })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::{profile_processing, profile_quality, GraphInput};
    use ease_graphgen::grids::RmatSpec;
    use ease_graphgen::rmat::RMAT_COMBOS;
    use ease_ml::zoo;

    fn inputs(n: usize, edges: usize) -> Vec<GraphInput> {
        (0..n)
            .map(|i| {
                GraphInput::Rmat(RmatSpec {
                    name: format!("train-{i}"),
                    combo_index: i % 9,
                    params: RMAT_COMBOS[i % 9],
                    num_vertices: 64 << (i % 3),
                    num_edges: edges,
                    seed: 1000 + i as u64,
                })
            })
            .collect()
    }

    #[test]
    fn quality_predictor_end_to_end() {
        let records = profile_quality(
            &inputs(6, 900),
            &[PartitionerId::OneDD, PartitionerId::Ne, PartitionerId::Hdrf],
            &[2, 4, 8],
            7,
        );
        let qp = QualityPredictor::train(&records, PropertyTier::Basic, &zoo::quick_grid(), 3, 1);
        // predictions are clamped to the metric domain
        let g = inputs(1, 900)[0].generate();
        let props = GraphProperties::compute_advanced(&g);
        let m = qp.predict(&props, PartitionerId::Ne, 4);
        assert!(m.replication_factor >= 1.0);
        assert!(m.edge_balance >= 1.0);
        // higher k should predict higher RF for a hash partitioner
        let rf2 =
            qp.predict_target(QualityTarget::ReplicationFactor, &props, PartitionerId::OneDD, 2);
        let rf8 =
            qp.predict_target(QualityTarget::ReplicationFactor, &props, PartitionerId::OneDD, 8);
        assert!(rf8 > rf2 * 0.9, "rf2={rf2} rf8={rf8}");
        assert_eq!(qp.chosen.len(), 5);
    }

    #[test]
    fn quality_predictor_learns_partitioner_differences() {
        let records =
            profile_quality(&inputs(8, 1_200), &[PartitionerId::Crvc, PartitionerId::Ne], &[8], 3);
        let qp = QualityPredictor::train(&records, PropertyTier::Basic, &zoo::quick_grid(), 3, 2);
        let g = inputs(1, 1_200)[0].generate();
        let props = GraphProperties::compute_advanced(&g);
        let rf_hash =
            qp.predict_target(QualityTarget::ReplicationFactor, &props, PartitionerId::Crvc, 8);
        let rf_ne =
            qp.predict_target(QualityTarget::ReplicationFactor, &props, PartitionerId::Ne, 8);
        assert!(rf_ne < rf_hash, "ne {rf_ne} vs crvc {rf_hash}");
    }

    #[test]
    fn partitioning_time_predictor_orders_families() {
        let records =
            profile_quality(&inputs(8, 4_000), &[PartitionerId::OneDD, PartitionerId::Ne], &[4], 5);
        let tp = PartitioningTimePredictor::train(&records, &zoo::quick_grid(), 3, 1);
        let g = inputs(1, 4_000)[0].generate();
        let props = GraphProperties::compute_advanced(&g);
        let fast = tp.predict(&props, PartitionerId::OneDD);
        let slow = tp.predict(&props, PartitionerId::Ne);
        assert!(fast >= 0.0 && slow >= 0.0);
        assert!(slow > fast, "ne {slow} should cost more than 1dd {fast}");
    }

    #[test]
    fn processing_time_predictor_per_workload() {
        let records = profile_processing(
            &inputs(5, 1_000),
            &[PartitionerId::Dbh, PartitionerId::Ne],
            4,
            &[Workload::PageRank { iterations: 5 }, Workload::ConnectedComponents],
            3,
        );
        let pp = ProcessingTimePredictor::train(&records, &zoo::quick_grid(), 3, 1);
        assert_eq!(pp.supported_workloads().len(), 2);
        let g = inputs(1, 1_000)[0].generate();
        let props = GraphProperties::compute_advanced(&g);
        let metrics = ease_partition::QualityMetrics {
            replication_factor: 2.0,
            edge_balance: 1.05,
            vertex_balance: 1.2,
            source_balance: 1.2,
            dest_balance: 1.2,
        };
        let t = pp.predict_target(Workload::PageRank { iterations: 5 }, &props, &metrics);
        assert!(t > 0.0);
        let total = pp.predict_total(Workload::PageRank { iterations: 5 }, &props, &metrics);
        assert!((total - t * 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no model trained for workload")]
    fn unknown_workload_panics() {
        let records = profile_processing(
            &inputs(2, 600),
            &[PartitionerId::Dbh],
            2,
            &[Workload::ConnectedComponents],
            3,
        );
        let pp = ProcessingTimePredictor::train(&records, &zoo::quick_grid(), 2, 1);
        let g = inputs(1, 600)[0].generate();
        let props = GraphProperties::compute_advanced(&g);
        let metrics = records[0].metrics;
        let _ = pp.predict_target(Workload::KCores, &props, &metrics);
    }

    #[test]
    fn log_transform_round_trips() {
        for v in [0.001, 1.0, 1234.5] {
            assert!((from_log(to_log(v)) - v).abs() < 1e-9);
        }
        // negative log-space predictions clamp to the 1 µs floor
        assert_eq!(from_log(-5.0), 1e-6);
        assert_eq!(from_log(to_log(0.0)), 1e-6);
    }
}
