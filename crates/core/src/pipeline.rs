//! End-to-end training pipeline: corpora → profiling → model selection →
//! a trained [`Ease`] system (paper Fig. 5).

use crate::predictors::{PartitioningTimePredictor, ProcessingTimePredictor, QualityPredictor};
use crate::profiling::{
    profile_processing_pooled, profile_quality_pooled, GraphInput, PreparedPool, ProcessingRecord,
    QualityRecord, TimingMode,
};
use crate::selector::Ease;
use ease_graph::PropertyTier;
use ease_graphgen::grids::{rmat_large_corpus, rmat_small_corpus, Scale};
use ease_ml::{zoo, ModelConfig};
use ease_partition::PartitionerId;
use ease_procsim::Workload;

/// Pipeline configuration. [`EaseConfig::at_scale`] provides calibrated
/// defaults; every field can be overridden.
#[derive(Debug, Clone)]
pub struct EaseConfig {
    pub scale: Scale,
    /// Partition counts profiled for the quality predictor (paper:
    /// K = {4, 8, 16, 32, 64, 128}).
    pub ks: Vec<usize>,
    /// Partition count for the processing runs (paper: 4).
    pub processing_k: usize,
    /// Cross-validation folds (paper: 5).
    pub folds: usize,
    pub grid: Vec<ModelConfig>,
    pub tier: PropertyTier,
    pub partitioners: Vec<PartitionerId>,
    pub workloads: Vec<Workload>,
    /// Cap the R-MAT-SMALL corpus (None = all 297 graphs).
    pub max_small_graphs: Option<usize>,
    /// Cap the R-MAT-LARGE corpus (None = all 180 graphs).
    pub max_large_graphs: Option<usize>,
    pub seed: u64,
    /// Wall-clock measurement (paper-faithful, default) or a reproducible
    /// analytical proxy for partitioning times — see [`TimingMode`].
    pub timing: TimingMode,
}

impl EaseConfig {
    /// Calibrated defaults per scale. `Tiny` trains a small but complete
    /// pipeline in seconds (tests); `Small` is the experiment default;
    /// `Medium` approaches the paper's grid dimensions.
    pub fn at_scale(scale: Scale) -> Self {
        let (ks, folds, grid, max_small, max_large) = match scale {
            Scale::Tiny => (vec![2, 4, 8], 3, zoo::quick_grid(), Some(24), Some(10)),
            Scale::Small => (vec![4, 16, 64], 5, zoo::default_grid(), None, None),
            Scale::Medium => (vec![4, 8, 16, 32, 64, 128], 5, zoo::default_grid(), None, None),
        };
        EaseConfig {
            scale,
            ks,
            processing_k: 4,
            folds,
            grid,
            tier: PropertyTier::Basic,
            partitioners: PartitionerId::ALL.to_vec(),
            workloads: Workload::all_training().to_vec(),
            max_small_graphs: max_small,
            max_large_graphs: max_large,
            // lint: magic-ok(default pipeline seed; spells the magic for fun, not a wire constant)
            seed: 0xEA5E,
            timing: TimingMode::Measured,
        }
    }

    /// The R-MAT-SMALL inputs (quality-predictor training).
    pub fn small_inputs(&self) -> Vec<GraphInput> {
        let mut specs = rmat_small_corpus(self.scale);
        if let Some(cap) = self.max_small_graphs {
            // stride-subsample to keep grid diversity
            specs = stride_cap(specs, cap);
        }
        GraphInput::from_specs(specs)
    }

    /// The R-MAT-LARGE inputs (time-predictor training).
    pub fn large_inputs(&self) -> Vec<GraphInput> {
        let mut specs = rmat_large_corpus(self.scale);
        if let Some(cap) = self.max_large_graphs {
            specs = stride_cap(specs, cap);
        }
        GraphInput::from_specs(specs)
    }
}

fn stride_cap<T>(items: Vec<T>, cap: usize) -> Vec<T> {
    if items.len() <= cap {
        return items;
    }
    let stride = items.len() as f64 / cap as f64;
    let mut picks: Vec<usize> = (0..cap).map(|i| (i as f64 * stride) as usize).collect();
    picks.dedup();
    let mut out = Vec::with_capacity(picks.len());
    let mut iter = items.into_iter().enumerate();
    let mut want = picks.into_iter().peekable();
    while let (Some(&next), Some((idx, item))) = (want.peek(), iter.next()) {
        if idx == next {
            out.push(item);
            want.next();
        }
    }
    out
}

/// Everything the training produced besides the models — kept for
/// evaluation and enrichment studies.
pub struct TrainingArtifacts {
    pub quality_records: Vec<QualityRecord>,
    pub processing_records: Vec<ProcessingRecord>,
}

/// Run the full pipeline: profile both corpora, select + train the three
/// predictors, assemble the system.
pub fn train_ease(cfg: &EaseConfig) -> (Ease, TrainingArtifacts) {
    let small = cfg.small_inputs();
    let large = cfg.large_inputs();
    // Specs present in both corpora are generated + prepared once total
    // and shared between the quality and processing passes; the pool is
    // dropped (with its contexts) as soon as profiling ends.
    let pool = PreparedPool::for_overlap(&small, &large);
    let quality_records =
        profile_quality_pooled(&small, &cfg.partitioners, &cfg.ks, cfg.seed, cfg.timing, &pool);
    let processing_records = profile_processing_pooled(
        &large,
        &cfg.partitioners,
        cfg.processing_k,
        &cfg.workloads,
        cfg.seed ^ 0x9A,
        cfg.timing,
        &pool,
    );
    drop(pool);
    let quality =
        QualityPredictor::train(&quality_records, cfg.tier, &cfg.grid, cfg.folds, cfg.seed);
    // Partitioning time is trained on the larger graphs (paper Sec. IV-A);
    // the processing records carry the same measurements.
    let ptime_records: Vec<QualityRecord> = dedup_partition_runs(&processing_records);
    let partitioning_time =
        PartitioningTimePredictor::train(&ptime_records, &cfg.grid, cfg.folds, cfg.seed);
    let processing_time =
        ProcessingTimePredictor::train(&processing_records, &cfg.grid, cfg.folds, cfg.seed);
    let mut ease = Ease::new(quality, partitioning_time, processing_time);
    ease.catalog = cfg.partitioners.clone();
    (ease, TrainingArtifacts { quality_records, processing_records })
}

/// Collapse processing records (one per workload) into one partitioning-run
/// record per (graph, partitioner).
pub fn dedup_partition_runs(records: &[ProcessingRecord]) -> Vec<QualityRecord> {
    let mut seen: std::collections::HashSet<(String, PartitionerId)> = Default::default();
    let mut out = Vec::new();
    for r in records {
        if seen.insert((r.graph_name.clone(), r.partitioner)) {
            out.push(QualityRecord {
                graph_name: r.graph_name.clone(),
                graph_type: r.graph_type,
                props: r.props.clone(),
                partitioner: r.partitioner,
                k: r.k,
                metrics: r.metrics,
                partitioning_secs: r.partitioning_secs,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::OptGoal;
    use ease_graph::GraphProperties;

    #[test]
    fn tiny_pipeline_trains_and_selects() {
        let mut cfg = EaseConfig::at_scale(Scale::Tiny);
        // shrink further for test speed
        cfg.max_small_graphs = Some(8);
        cfg.max_large_graphs = Some(4);
        cfg.ks = vec![2, 4];
        cfg.partitioners = vec![PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne];
        cfg.workloads = vec![Workload::PageRank { iterations: 3 }, Workload::ConnectedComponents];
        let (ease, artifacts) = train_ease(&cfg);
        assert_eq!(artifacts.quality_records.len(), 8 * 3 * 2);
        assert_eq!(artifacts.processing_records.len(), 4 * 3 * 2);
        let g = ease_graphgen::realworld::socfb_analogue(Scale::Tiny, 5).graph;
        let props = GraphProperties::compute_advanced(&g);
        for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
            let sel = ease.select(&props, Workload::PageRank { iterations: 3 }, 4, goal);
            assert!(cfg.partitioners.contains(&sel.best));
            assert_eq!(sel.candidates.len(), 3);
            for c in &sel.candidates {
                assert!(c.end_to_end_secs >= c.processing_secs);
                assert!(c.quality.replication_factor >= 1.0);
            }
        }
    }

    #[test]
    fn stride_cap_preserves_spread() {
        let items: Vec<usize> = (0..100).collect();
        let capped = stride_cap(items, 10);
        assert_eq!(capped.len(), 10);
        assert_eq!(capped[0], 0);
        assert!(capped[9] >= 80);
    }

    #[test]
    fn dedup_partition_runs_one_per_pair() {
        let cfg = EaseConfig {
            max_large_graphs: Some(2),
            workloads: vec![Workload::PageRank { iterations: 2 }, Workload::ConnectedComponents],
            partitioners: vec![PartitionerId::OneDD],
            ..EaseConfig::at_scale(Scale::Tiny)
        };
        let records = crate::profiling::profile_processing(
            &cfg.large_inputs(),
            &cfg.partitioners,
            2,
            &cfg.workloads,
            1,
        );
        let deduped = dedup_partition_runs(&records);
        assert_eq!(deduped.len(), 2); // 2 graphs × 1 partitioner
    }
}
