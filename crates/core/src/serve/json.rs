//! Dependency-free JSON for the HTTP facade — an escape-correct encoder
//! and a recursive-descent decoder over a small [`Value`] tree.
//!
//! This is the *only* place in the workspace that formats or parses JSON
//! text (enforced by convention and review, the same way `persist.rs` owns
//! the binary codec): `protocol.rs` builds [`Value`] trees for its
//! `to_json`/`from_json` codecs and `http.rs` wraps them in an envelope,
//! but neither ever concatenates JSON strings by hand. The decoder is
//! hardened the way the lint lexer is — depth-capped, allocation-capped by
//! the caller's input cap, and every malformation is a typed error rather
//! than a panic — and property-tested alongside it.

use std::fmt::Write as _;

/// Nesting depth past which the decoder refuses input: the serve protocol
/// nests two levels deep, so 64 is generous while keeping a hostile
/// `[[[[…` body from exhausting the worker's stack.
pub const MAX_JSON_DEPTH: usize = 64;

/// One JSON value. Numbers split into [`Value::UInt`] (every number the
/// serve protocol emits is an unsigned integer, and `u64` counters like a
/// memory budget must survive the trip bit-exactly) and [`Value::Num`]
/// for everything else a peer may send.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other JSON number (negative, fractional, or exponent form).
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered pairs — rendering is deterministic and duplicate
    /// keys are representable (the decoder keeps the last occurrence
    /// reachable via [`Value::get`], which scans from the back).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Shorthand for a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Member lookup on an object; `None` for other shapes. Later
    /// duplicates win, matching common JSON object semantics.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialize to compact JSON text (no whitespace). Every `&str` in the
    /// tree round-trips: control characters, quotes, backslashes, and
    /// astral-plane characters all escape correctly. A non-finite
    /// [`Value::Num`] renders as `null` — JSON has no spelling for it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            // lint: panic-ok(fmt::Write to a String is infallible)
            Value::UInt(n) => write!(out, "{n}").expect("write to String"),
            Value::Num(x) if x.is_finite() => {
                // lint: panic-ok(fmt::Write to a String is infallible)
                write!(out, "{x}").expect("write to String");
            }
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                // lint: panic-ok(fmt::Write to a String is infallible)
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. The whole input must be a single value plus
/// optional whitespace — trailing bytes are an error, mirroring the binary
/// codec's trailing-bytes check. Errors carry the byte offset of the
/// failure; callers wrap them in their own typed error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl std::fmt::Display) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        // lint: panic-ok(pos only advances past bytes that exist, so pos <= len)
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_JSON_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(pairs)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes, reattached as validated UTF-8
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run =
                    // lint: panic-ok(start <= pos <= len by the scan loop)
                    std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => out.push(self.escape()?),
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        match self.bump() {
            Some(b'"') => Ok('"'),
            Some(b'\\') => Ok('\\'),
            Some(b'/') => Ok('/'),
            Some(b'n') => Ok('\n'),
            Some(b'r') => Ok('\r'),
            Some(b't') => Ok('\t'),
            Some(b'b') => Ok('\u{08}'),
            Some(b'f') => Ok('\u{0c}'),
            Some(b'u') => self.unicode_escape(),
            _ => Err(self.err("unknown escape sequence")),
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        let code = if (0xD800..=0xDBFF).contains(&hi) {
            // surrogate pair: the low half must follow immediately
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("high surrogate not followed by `\\u` low surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(self.err("high surrogate followed by a non-surrogate"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| self.err("escape is not a scalar value"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("expected four hex digits after `\\u`")),
            };
            code = (code << 4) | digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // integer part: `0` alone or a nonzero-led digit run
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        let integer_end = self.pos;
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // the slice is ASCII digits and punctuation matched above
        let text =
            // lint: panic-ok(start <= pos <= len by the digit scan)
            std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if !negative && !fractional {
            // exact u64 when it fits; huge integers degrade to f64 below
            let exact = self.bytes[start..integer_end] // lint: panic-ok(start <= integer_end <= pos <= len)
                .iter()
                .try_fold(0u64, |acc, b| acc.checked_mul(10)?.checked_add(u64::from(b - b'0')));
            if let Some(n) = exact {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>().map(Value::Num).map_err(|e| self.err(format!("bad number: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: Value) {
        let text = value.render();
        assert_eq!(parse(&text).unwrap(), value, "rendered as {text}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::UInt(0));
        round_trip(Value::UInt(u64::MAX));
        round_trip(Value::Num(-1.5));
        round_trip(Value::str(""));
        round_trip(Value::str("plain ascii"));
    }

    #[test]
    fn strings_escape_correctly() {
        round_trip(Value::str("quote \" backslash \\ slash /"));
        round_trip(Value::str("newline\n tab\t return\r bell\u{7} nul\u{0}"));
        round_trip(Value::str("backspace\u{8} formfeed\u{c}"));
        round_trip(Value::str("unicode: héllo → 図 🦀"));
        assert_eq!(Value::str("a\"b").render(), r#""a\"b""#);
        assert_eq!(Value::str("\n").render(), r#""\n""#);
        assert_eq!(Value::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""A""#).unwrap(), Value::str("A"));
        assert_eq!(parse(r#""é""#).unwrap(), Value::str("é"));
        // surrogate pair for U+1F980 (crab)
        assert_eq!(parse(r#""🦀""#).unwrap(), Value::str("🦀"));
        // lone or malformed surrogates are typed errors, not panics
        assert!(parse(r#""\ud83e""#).is_err());
        assert!(parse(r#""\udd80""#).is_err());
        assert!(parse(r#""\ud83eA""#).is_err());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Value::Arr(vec![]));
        round_trip(Value::Obj(vec![]));
        round_trip(Value::Arr(vec![Value::UInt(1), Value::Null, Value::str("x")]));
        round_trip(Value::Obj(vec![
            ("type".into(), Value::str("stats")),
            ("nested".into(), Value::Obj(vec![("k".into(), Value::Arr(vec![Value::Bool(false)]))])),
        ]));
    }

    #[test]
    fn whitespace_and_structure_parse() {
        let v = parse(" { \"a\" : [ 1 , 2 ] ,\n\t\"b\" : null } ").unwrap();
        assert_eq!(v.get("a"), Some(&Value::Arr(vec![Value::UInt(1), Value::UInt(2)])));
        assert!(v.get("b").unwrap().is_null());
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k"), Some(&Value::UInt(2)));
    }

    #[test]
    fn numbers_split_exact_and_lossy() {
        assert_eq!(parse("18446744073709551615").unwrap(), Value::UInt(u64::MAX));
        // one past u64::MAX degrades to f64 rather than failing
        assert!(matches!(parse("18446744073709551616").unwrap(), Value::Num(_)));
        assert_eq!(parse("-3").unwrap(), Value::Num(-3.0));
        assert_eq!(parse("2.5").unwrap(), Value::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Num(1000.0));
        // leading zeros and bare signs are malformed per the JSON grammar
        assert!(parse("01").is_err());
        assert!(parse("-").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn malformed_documents_are_errors_not_panics() {
        for src in [
            "",
            "  ",
            "nul",
            "truth",
            "\"unterminated",
            "\"bad \\q escape\"",
            "[1,",
            "[1 2]",
            "{\"k\" 1}",
            "{k:1}",
            "{\"k\":}",
            "[1]x",
            "{} {}",
            "\u{1}",
        ] {
            assert!(parse(src).is_err(), "accepted malformed input {src:?}");
        }
        // raw control character inside a string must be escaped
        assert!(parse("\"a\nb\"").is_err());
    }

    #[test]
    fn depth_bomb_is_refused() {
        let deep = "[".repeat(MAX_JSON_DEPTH + 2) + &"]".repeat(MAX_JSON_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "got: {err}");
        // right at the cap still parses
        let ok = "[".repeat(MAX_JSON_DEPTH) + &"]".repeat(MAX_JSON_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert!(err.starts_with("byte 4:"), "got: {err}");
    }
}
