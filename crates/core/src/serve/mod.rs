//! `ease serve` — a long-running recommendation daemon behind a unix
//! socket and/or a pipelined TCP listener.
//!
//! The paper's economics (Sec. I) are *profile once, recommend cheaply
//! forever* — but a one-shot `ease recommend` process pays startup, model
//! deserialization and a cold property cache on every invocation, throwing
//! away exactly the amortization the trained service exists to provide.
//! This module keeps one [`EaseService`] warm in a resident process and
//! serves concurrent clients over two transports sharing one generic
//! connection loop:
//!
//! * **Protocol** ([`protocol`]) — length-prefixed frames in two formats:
//!   v1 (`[0xEA 0x5E][len][payload]`, one request per connection) and v2
//!   (`[0xEA 0x5F][u64 id][len][payload]`, *pipelined*: many requests per
//!   connection, responses tagged with the request id and completed out of
//!   order). Payloads are versioned binary [`Request`]/[`Response`] values
//!   encoded with the same `Writer`/`Reader` codec the model persistence
//!   uses.
//! * **Server** ([`server`]) — [`serve`] binds the configured endpoints
//!   (unix socket, TCP, or both) and fans accepted connections out over a
//!   bounded pool of connection workers; request execution runs on a
//!   second bounded executor pool shared by every pipelined session, so
//!   one connection's requests complete concurrently and out of order.
//!   Per-connection backpressure is a bounded in-flight window
//!   ([`ServeConfig::pipeline_in_flight`]): a slow-reading client stalls
//!   only its own connection, never the executors or the accept loop.
//! * **Router** ([`router`] + [`ring`]) — [`route`] runs the same
//!   connection stack with a forwarding handler instead of a local one:
//!   a consistent-hash ring shards graphs across a fleet of daemons for
//!   cache affinity, health checks mark backends down/up, idempotent
//!   requests fail over to ring successors, `cache-stats` aggregates
//!   fleet-wide, and budget-aware admission sheds oversized queries with
//!   a typed [`Response::Overloaded`] when no backend has headroom.
//! * **HTTP facade** ([`http`] + [`json`]) — the same sniffer recognises
//!   `GET `/`POST` prefixes and serves an HTTP/1.1 + JSON surface
//!   (`/recommend`, `/features`, `/stats`, `/healthz`, `/shutdown`,
//!   `/rpc`) on the same connection workers, executor pool and `Handler`
//!   — so `curl` reaches both a daemon and a router fleet with no new
//!   listener and zero dependencies. [`Request`]/[`Response`] are pure
//!   data with codecs at the edges: `encode_binary`/`decode_binary` and
//!   `to_json`/`from_json` over the same types.
//! * **Clients** ([`client`]) — [`call`] performs one v1 exchange;
//!   [`PipelinedClient`] keeps one v2 connection open across many
//!   requests, and [`call_pipelined`] drives a whole batch through a
//!   bounded window. `ease client …` and the `--endpoint
//!   unix:|tcp:|http:` proxy flag are thin wrappers over these.
//! * **Rendering** — [`render_recommendation`] / [`render_features`] build
//!   the exact text the one-shot CLI prints. The daemon answers with the
//!   same renderer over the same extraction path, so a proxied answer is
//!   *bit-identical* to the one-shot answer by construction (and diffed in
//!   CI and `tests/serve.rs` / `tests/serve_pipelined.rs` to keep it that
//!   way).
//!
//! Failures never kill the daemon: graph files that do not exist, malformed
//! edge lists, unknown workloads, protocol garbage (on either transport)
//! and mmap'd `.bel` inputs reaching graph-only accessors are all typed
//! [`EaseError`]s routed back to the offending client as
//! [`Response::Error`].

use crate::error::EaseError;
use crate::selector::OptGoal;
use crate::service::EaseService;
use ease_graph::{GraphProperties, GraphSource, MemoryBudget, PreparedGraph, PropertyTier};
use ease_procsim::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

pub mod client;
pub mod http;
pub mod json;
pub mod protocol;
pub mod ring;
pub mod router;
pub mod server;

pub use client::{call, call_endpoint, call_pipelined, Endpoint, PipelinedClient};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, expect_answer, read_frame,
    read_frame_after_magic, read_frame_v2, read_frame_v2_after_magic, resolve_graph_path,
    write_frame, write_frame_v2, Request, Response, ServeStats, DEFAULT_TOP, FRAME_MAGIC,
    FRAME_MAGIC_V2, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use ring::HashRing;
pub use router::{route, RouterConfig};
pub use server::{serve, ServerHandle};

// ---------------------------------------------------------------------
// Rendering — the single source of truth for CLI-visible answer text
// ---------------------------------------------------------------------

/// Render a recommendation answer exactly as the one-shot
/// `ease recommend` prints it. Both the one-shot CLI and the daemon call
/// this function, which is what makes `--daemon` answers bit-identical to
/// per-process answers: same extraction path (the service's
/// fingerprint-keyed property cache over a [`PreparedGraph`]), same
/// formatting, same bytes.
pub fn render_recommendation(
    service: &EaseService,
    display_path: &str,
    source: &dyn GraphSource,
    workload: Workload,
    k: usize,
    goal: OptGoal,
    top: usize,
    budget: Option<&Arc<MemoryBudget>>,
) -> Result<String, EaseError> {
    let prepared = budgeted(PreparedGraph::of_source(source), budget);
    let selection = service.recommend_prepared_with_k(&prepared, workload, k, goal)?;
    Ok(render_selection(
        display_path,
        source.num_vertices(),
        source.edge_count(),
        workload,
        k,
        goal,
        top,
        selection,
    ))
}

/// Attach a memory budget (when one is configured) to a freshly built
/// analysis context. Budgeted and unbudgeted contexts produce bit-identical
/// results — the budget only changes *where* derived CSRs live (heap vs.
/// spill file), never what they contain.
fn budgeted<'g>(
    prepared: PreparedGraph<'g>,
    budget: Option<&Arc<MemoryBudget>>,
) -> PreparedGraph<'g> {
    match budget {
        Some(b) => prepared.with_memory_budget(Arc::clone(b)),
        None => prepared,
    }
}

/// Format a computed [`Selection`](crate::selector::Selection) exactly as
/// the one-shot CLI prints it. Split out of [`render_recommendation`] so
/// the daemon's stat-memo fast path (which knows `|V|`, `|E|` and the
/// cached properties without reopening the graph) renders through the
/// same bytes-producing code as the full path.
pub(crate) fn render_selection(
    display_path: &str,
    n: usize,
    m: usize,
    workload: Workload,
    k: usize,
    goal: OptGoal,
    top: usize,
    selection: crate::selector::Selection,
) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(
        w,
        "graph {display_path}: |V|={n} |E|={m} mean-degree {:.2}",
        if n > 0 { 2.0 * m as f64 / n as f64 } else { 0.0 }
    );
    let _ = writeln!(
        w,
        "recommended partitioner for {} (k={k}, goal {}): {}",
        workload.label(),
        selection.goal.name(),
        selection.best.name()
    );
    let mut ranked = selection.candidates;
    // total_cmp: non-finite predictions must not panic a daemon worker
    ranked.sort_by(|a, b| {
        let cost = |c: &crate::selector::PredictedCosts| match goal {
            OptGoal::EndToEnd => c.end_to_end_secs,
            OptGoal::ProcessingOnly => c.processing_secs,
        };
        cost(a).total_cmp(&cost(b))
    });
    let _ = writeln!(
        w,
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "candidate", "pred-part", "pred-proc", "pred-e2e", "rf"
    );
    for c in ranked.iter().take(top) {
        let _ = writeln!(
            w,
            "{:<10} {:>11.4}s {:>11.4}s {:>11.4}s {:>8.2}",
            c.partitioner.name(),
            c.partitioning_secs,
            c.processing_secs,
            c.end_to_end_secs,
            c.quality.replication_factor
        );
    }
    out
}

/// Render a feature-extraction answer exactly as the one-shot
/// `ease features` prints it. The final line carries wall-clock extraction
/// timings (cold vs prepared) and is the only run-dependent line — CI and
/// tests strip it before diffing daemon output against one-shot output.
pub fn render_features(
    display_path: &str,
    source: &dyn GraphSource,
    tier: PropertyTier,
    budget: Option<&Arc<MemoryBudget>>,
) -> Result<String, EaseError> {
    // cold: throwaway context per extraction (what a naive caller pays)
    let t = std::time::Instant::now();
    let cold = budgeted(PreparedGraph::of_source(source), budget).properties(tier);
    let cold_secs = t.elapsed().as_secs_f64();
    // prepared: one shared context; the first extraction builds the caches,
    // the second shows the steady-state cost of a warmed context
    let prepared = budgeted(PreparedGraph::of_source(source), budget);
    let t = std::time::Instant::now();
    let first = GraphProperties::compute_prepared(&prepared, tier);
    let first_secs = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let warm = GraphProperties::compute_prepared(&prepared, tier);
    let warm_secs = t.elapsed().as_secs_f64();
    // extraction determinism is locked by the graph_source/prepared_graph
    // suites; a debug_assert keeps test builds honest without giving the
    // daemon a panic path
    debug_assert_eq!(cold, first, "prepared extraction must match the cold path");
    debug_assert_eq!(first, warm);

    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(
        w,
        "graph {display_path} (|V|={} |E|={}): {} tier",
        source.num_vertices(),
        source.edge_count(),
        tier.name()
    );
    let _ = writeln!(w, "{:<20} {:>18}", "feature", "value");
    for (name, value) in GraphProperties::feature_names(tier).iter().zip(cold.feature_vector(tier))
    {
        let _ = writeln!(w, "{name:<20} {value:>18.6}");
    }
    let _ = writeln!(w, "fingerprint          0x{:016x}", prepared.fingerprint());
    let speedup = if warm_secs > 0.0 { cold_secs / warm_secs } else { f64::INFINITY };
    let _ = writeln!(
        w,
        "extraction: cold {:.3} ms | prepared first {:.3} ms | prepared warm {:.3} ms ({speedup:.0}x)",
        cold_secs * 1e3,
        first_secs * 1e3,
        warm_secs * 1e3,
    );
    Ok(out)
}

// ---------------------------------------------------------------------
// Server configuration
// ---------------------------------------------------------------------

/// Per-connection socket read/write timeout default (see
/// [`ServeConfig::io_timeout`]).
pub const DEFAULT_IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Default bound on concurrently executing + queued responses per
/// pipelined connection (see [`ServeConfig::pipeline_in_flight`]).
pub const DEFAULT_PIPELINE_IN_FLIGHT: usize = 32;

/// Server configuration: the endpoints to bind and the worker-pool bounds.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to bind, if any. At least one of `socket`
    /// and `tcp` must be set.
    pub socket: Option<PathBuf>,
    /// TCP listen address (`host:port`; port 0 picks an ephemeral port —
    /// read the actual one from [`ServerHandle::tcp_addr`]).
    pub tcp: Option<String>,
    /// Concurrent request handlers (≥ 1; clamped to ≥ 2 internally so a
    /// shutdown request can always be processed while a long extraction is
    /// in flight). Sizes both the connection pool and the request-executor
    /// pool.
    pub workers: usize,
    /// Read/write timeout applied to every accepted connection. A peer
    /// that connects and then stalls mid-frame would otherwise pin a
    /// worker thread forever — enough such peers would exhaust the pool
    /// and make even graceful shutdown hang. `None` disables (tests only);
    /// pipelined sessions keep a write timeout regardless, because their
    /// writer thread must stay joinable for graceful drain.
    pub io_timeout: Option<std::time::Duration>,
    /// Per-connection pipelining window: how many requests of one v2
    /// connection may be executing or queued for write at once. When the
    /// window is full the connection's *reader* blocks — backpressure is
    /// per connection, so a slow-reading client cannot occupy executors
    /// or stall the accept loop.
    pub pipeline_in_flight: usize,
    /// Enable the daemon's stat-keyed fingerprint memo. A warm recommend
    /// query's dominant cost is not the model but re-hashing the graph's
    /// edge list to key the property cache; the memo maps a graph *file*
    /// (by `dev`/`ino`/`size`/`mtime`) to the fingerprint it hashed last
    /// time, so repeated queries on an unchanged file skip the open and
    /// the `O(|E|)` hash entirely. A rewritten file changes its stamp and
    /// misses — answers are never served stale. Default on; turned off by
    /// benchmarks that want to measure the un-memoized baseline.
    pub fingerprint_memo: bool,
    /// Memory budget for per-request derived state (PR 8). When set, every
    /// analysis context the daemon builds charges its CSRs against this
    /// shared budget; builds that would exceed it spill to disk instead of
    /// growing the daemon's heap. Answers are bit-identical either way.
    pub memory_budget: Option<Arc<MemoryBudget>>,
}

impl ServeConfig {
    /// Default worker count: one per available core, at least 2 (see
    /// [`ServeConfig::workers`]), at most 8 — selection is CPU-bound, so
    /// more workers than cores only adds contention.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2).clamp(2, 8)
    }

    /// Serve on a unix-domain socket (the PR 5 shape; add [`Self::tcp`]
    /// for a TCP listener alongside).
    pub fn at(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: Some(socket.into()),
            tcp: None,
            workers: Self::default_workers(),
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
            pipeline_in_flight: DEFAULT_PIPELINE_IN_FLIGHT,
            fingerprint_memo: true,
            memory_budget: None,
        }
    }

    /// Serve on a TCP address only (no unix socket).
    pub fn tcp_at(addr: impl Into<String>) -> Self {
        ServeConfig {
            socket: None,
            tcp: Some(addr.into()),
            workers: Self::default_workers(),
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
            pipeline_in_flight: DEFAULT_PIPELINE_IN_FLIGHT,
            fingerprint_memo: true,
            memory_budget: None,
        }
    }

    /// Add a TCP listener (kept alongside any configured unix socket).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp = Some(addr.into());
        self
    }

    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub fn io_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    pub fn pipeline_in_flight(mut self, in_flight: usize) -> Self {
        self.pipeline_in_flight = in_flight.max(1);
        self
    }

    pub fn fingerprint_memo(mut self, enabled: bool) -> Self {
        self.fingerprint_memo = enabled;
        self
    }

    /// Budget per-request derived state (see [`ServeConfig::memory_budget`]).
    pub fn memory_budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        self.memory_budget = Some(budget);
        self
    }
}

/// Final serving counters returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered over the daemon's lifetime (all request kinds).
    pub requests_served: u64,
}
