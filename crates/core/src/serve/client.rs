//! Client side of the serve protocol: one-shot v1 calls over the unix
//! socket (the PR 5 shape, unchanged) and pipelined v2 sessions over
//! either transport.
//!
//! A [`PipelinedClient`] keeps one connection open across many requests:
//! [`PipelinedClient::send`] tags each request with a fresh `u64` id and
//! returns immediately, responses come back whenever the daemon finishes
//! them — possibly out of order — and [`PipelinedClient::recv`] matches
//! them back up, parking any responses that arrive for other ids.
//! [`call_pipelined`] drives a whole batch through a bounded window,
//! which matters: a client that wrote an unbounded burst without reading
//! would deadlock against the daemon's per-connection in-flight cap
//! (both sides blocked on full buffers). Keeping the window at or below
//! the server's [`super::ServeConfig::pipeline_in_flight`] keeps the
//! pipe moving by construction.

use super::protocol::{
    decode_response, encode_request, proto_err, read_frame, read_frame_v2, write_frame,
    write_frame_v2, Request, Response,
};
use crate::error::EaseError;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

/// Where a daemon lives: a unix socket path, a TCP address (binary v2),
/// or an HTTP address (the JSON facade on the same listener).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix-domain socket path (unix platforms only).
    Unix(PathBuf),
    /// TCP `host:port` address, spoken to with the binary v2 protocol.
    Tcp(String),
    /// TCP `host:port` address, spoken to over HTTP + JSON. Same
    /// listener as [`Endpoint::Tcp`] — the daemon sniffs the format per
    /// connection.
    Http(String),
}

impl Endpoint {
    pub fn unix(socket: impl Into<PathBuf>) -> Endpoint {
        Endpoint::Unix(socket.into())
    }

    pub fn tcp(addr: impl Into<String>) -> Endpoint {
        Endpoint::Tcp(addr.into())
    }

    pub fn http(addr: impl Into<String>) -> Endpoint {
        Endpoint::Http(addr.into())
    }

    /// Parse the scheme-prefixed endpoint spelling every CLI surface
    /// shares: `unix:<path>`, `tcp:<host:port>`, or `http:<host:port>`
    /// (a tolerated `http://<host:port>` means the same). A bare
    /// `host:port` is accepted as TCP for backwards compatibility with
    /// the old `--backend` spelling; anything else (including a bare
    /// path) is a typed error naming the accepted forms.
    pub fn parse(spec: &str) -> Result<Endpoint, EaseError> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(proto_err("empty unix socket path in endpoint"));
            }
            return Ok(Endpoint::unix(path));
        }
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(proto_err("empty TCP address in endpoint"));
            }
            return Ok(Endpoint::tcp(addr));
        }
        if let Some(rest) = spec.strip_prefix("http:") {
            let addr = rest.strip_prefix("//").unwrap_or(rest);
            if addr.is_empty() {
                return Err(proto_err("empty HTTP address in endpoint"));
            }
            return Ok(Endpoint::http(addr));
        }
        // bare host:port (the pre-PR 10 `--backend` spelling) — but not a
        // filesystem path, which is a near-certain unix:/ typo
        if spec.contains(':') && !spec.contains('/') {
            return Ok(Endpoint::tcp(spec));
        }
        Err(proto_err(format!(
            "bad endpoint `{spec}` (expected unix:<path>, tcp:<host:port>, or http:<host:port>)"
        )))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Http(addr) => write!(f, "http:{addr}"),
        }
    }
}

/// Object-safe alias for "any byte stream a client can speak over".
/// `try_clone_stream` duplicates the OS handle so a session can be split
/// into independent send/receive halves (see [`PipelinedClient::split`]).
trait ClientStream: Read + Write + Send {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn ClientStream>>;
}

impl ClientStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn ClientStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

#[cfg(unix)]
impl ClientStream for std::os::unix::net::UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn ClientStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

fn connect(endpoint: &Endpoint) -> Result<Box<dyn ClientStream>, EaseError> {
    match endpoint {
        Endpoint::Unix(socket) => connect_unix(socket),
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr)?;
            // frames are small and latency-sensitive; Nagle would delay
            // every request behind the previous ACK
            stream.set_nodelay(true).ok();
            Ok(Box::new(stream))
        }
        // the JSON facade is request/response over `call_endpoint`; a v2
        // session against it would misframe on the first byte
        Endpoint::Http(_) => Err(proto_err(
            "pipelined sessions need a binary endpoint (unix:<path> or tcp:<host:port>); \
             http: endpoints answer one request per call",
        )),
    }
}

#[cfg(unix)]
fn connect_unix(socket: &Path) -> Result<Box<dyn ClientStream>, EaseError> {
    Ok(Box::new(std::os::unix::net::UnixStream::connect(socket)?))
}

#[cfg(not(unix))]
fn connect_unix(_socket: &Path) -> Result<Box<dyn ClientStream>, EaseError> {
    Err(crate::error::ServeError::Unsupported.into())
}

/// One v1 request/response exchange with a daemon at `socket` — the PR 5
/// client, byte-for-byte: connect, one frame out, half-close, one frame
/// back.
#[cfg(unix)]
pub fn call(socket: &Path, request: &Request) -> Result<Response, EaseError> {
    let mut stream = std::os::unix::net::UnixStream::connect(socket)?;
    write_frame(&mut stream, &encode_request(request))?;
    stream.shutdown(std::net::Shutdown::Write).ok();
    let payload = read_frame(&mut stream)?;
    decode_response(&payload)
}

/// Unix-domain sockets are unavailable on this platform; use a TCP
/// endpoint instead.
#[cfg(not(unix))]
pub fn call(_socket: &Path, _request: &Request) -> Result<Response, EaseError> {
    Err(crate::error::ServeError::Unsupported.into())
}

/// One request/response exchange with a daemon at `endpoint`. Unix
/// endpoints speak v1 (identical to [`call`]); TCP endpoints speak a
/// one-request v2 session; HTTP endpoints POST the JSON envelope to
/// `/rpc` — same answers every way, the daemon renders all of them
/// through the same code.
pub fn call_endpoint(endpoint: &Endpoint, request: &Request) -> Result<Response, EaseError> {
    match endpoint {
        Endpoint::Unix(socket) => call(socket, request),
        Endpoint::Tcp(_) => PipelinedClient::connect(endpoint)?.call(request),
        Endpoint::Http(addr) => super::http::call_http(addr, request),
    }
}

/// A v2 session: one connection, many requests in flight, responses
/// matched back to their ids. Not `Sync` — one session belongs to one
/// thread; open more sessions for more concurrency.
pub struct PipelinedClient {
    stream: Box<dyn ClientStream>,
    next_id: u64,
    /// Responses that arrived while [`Self::recv`] was waiting for a
    /// different id, kept in arrival order.
    parked: Vec<(u64, Response)>,
}

impl PipelinedClient {
    pub fn connect(endpoint: &Endpoint) -> Result<PipelinedClient, EaseError> {
        Ok(PipelinedClient { stream: connect(endpoint)?, next_id: 0, parked: Vec::new() })
    }

    /// Write one request frame and return the id its response will carry.
    /// Does not wait for the answer — that is the point.
    pub fn send(&mut self, request: &Request) -> Result<u64, EaseError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame_v2(&mut self.stream, id, &encode_request(request))?;
        Ok(id)
    }

    /// Next response in arrival order (parked responses first), whatever
    /// request it answers.
    pub fn recv_any(&mut self) -> Result<(u64, Response), EaseError> {
        if !self.parked.is_empty() {
            return Ok(self.parked.remove(0));
        }
        let (id, payload) = read_frame_v2(&mut self.stream)?;
        Ok((id, decode_response(&payload)?))
    }

    /// The response to request `want`, parking any responses that arrive
    /// for other in-flight requests along the way.
    pub fn recv(&mut self, want: u64) -> Result<Response, EaseError> {
        if let Some(at) = self.parked.iter().position(|(id, _)| *id == want) {
            return Ok(self.parked.remove(at).1);
        }
        loop {
            let (id, payload) = read_frame_v2(&mut self.stream)?;
            let response = decode_response(&payload)?;
            if id == want {
                return Ok(response);
            }
            self.parked.push((id, response));
        }
    }

    /// Synchronous convenience: send one request, wait for its answer.
    pub fn call(&mut self, request: &Request) -> Result<Response, EaseError> {
        let id = self.send(request)?;
        self.recv(id)
    }

    /// Split a fresh session into independently usable halves over the
    /// same connection (the OS-level stream is duplicated): one thread
    /// can keep sending while another blocks in
    /// [`PipelinedReceiver::recv_any`] — the shape a multiplexing proxy
    /// needs. Refuses to split a session with parked responses: those
    /// belong to the unified [`Self::recv`] bookkeeping.
    pub fn split(self) -> Result<(PipelinedSender, PipelinedReceiver), EaseError> {
        if !self.parked.is_empty() {
            return Err(proto_err("split a fresh session, not one with parked responses"));
        }
        let read = self.stream.try_clone_stream()?;
        let sender = PipelinedSender { stream: self.stream, next_id: self.next_id };
        Ok((sender, PipelinedReceiver { stream: read }))
    }
}

/// The write half of a split [`PipelinedClient`]: tags and sends request
/// frames, never reads.
pub struct PipelinedSender {
    stream: Box<dyn ClientStream>,
    next_id: u64,
}

impl PipelinedSender {
    /// Write one request frame and return the id its response will carry
    /// (on the paired [`PipelinedReceiver`]).
    pub fn send(&mut self, request: &Request) -> Result<u64, EaseError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame_v2(&mut self.stream, id, &encode_request(request))?;
        Ok(id)
    }
}

/// The read half of a split [`PipelinedClient`]: yields responses in
/// arrival order, never writes.
pub struct PipelinedReceiver {
    stream: Box<dyn ClientStream>,
}

impl PipelinedReceiver {
    /// Next response off the wire, whatever request it answers.
    pub fn recv_any(&mut self) -> Result<(u64, Response), EaseError> {
        let (id, payload) = read_frame_v2(&mut self.stream)?;
        Ok((id, decode_response(&payload)?))
    }
}

/// Drive a batch of requests through one pipelined connection, keeping up
/// to `window` of them in flight, and return the responses in request
/// order. `window` should not exceed the daemon's per-connection
/// in-flight cap ([`super::DEFAULT_PIPELINE_IN_FLIGHT`] by default) —
/// the bounded window is what prevents a write-everything-then-read
/// deadlock against the daemon's own backpressure.
pub fn call_pipelined(
    endpoint: &Endpoint,
    requests: &[Request],
    window: usize,
) -> Result<Vec<Response>, EaseError> {
    let window = window.max(1);
    let mut client = PipelinedClient::connect(endpoint)?;
    let mut responses: Vec<Option<Response>> = requests.iter().map(|_| None).collect();
    let mut index_of: HashMap<u64, usize> = HashMap::with_capacity(window);
    let mut sent = 0;
    let mut done = 0;
    while done < requests.len() {
        while sent < requests.len() && sent - done < window {
            // lint: panic-ok(loop condition bounds `sent` below requests.len())
            let id = client.send(&requests[sent])?;
            index_of.insert(id, sent);
            sent += 1;
        }
        let (id, response) = client.recv_any()?;
        let at = index_of
            .remove(&id)
            .ok_or_else(|| proto_err(format!("unexpected response for request id {id}")))?;
        // lint: panic-ok(`at` was inserted from `sent`, which indexes `requests`/`responses`)
        responses[at] = Some(response);
        done += 1;
    }
    let out: Vec<Response> = responses.into_iter().flatten().collect();
    if out.len() != requests.len() {
        return Err(proto_err("pipelined bookkeeping hole: a request went unanswered"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_accepts_all_three_schemes() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/ease.sock").unwrap(),
            Endpoint::unix("/tmp/ease.sock")
        );
        assert_eq!(Endpoint::parse("tcp:127.0.0.1:7070").unwrap(), Endpoint::tcp("127.0.0.1:7070"));
        assert_eq!(
            Endpoint::parse("http:127.0.0.1:7070").unwrap(),
            Endpoint::http("127.0.0.1:7070")
        );
    }

    #[test]
    fn endpoint_parse_tolerates_url_style_http() {
        assert_eq!(
            Endpoint::parse("http://127.0.0.1:7070").unwrap(),
            Endpoint::http("127.0.0.1:7070")
        );
    }

    #[test]
    fn endpoint_parse_keeps_bare_host_port_as_tcp() {
        // the pre-endpoint `--backend` spelling keeps working
        assert_eq!(Endpoint::parse("localhost:7070").unwrap(), Endpoint::tcp("localhost:7070"));
    }

    #[test]
    fn endpoint_parse_rejects_bare_paths_and_empty_values() {
        for bad in ["/tmp/ease.sock", "unix:", "tcp:", "http:", "http://", "just-a-name"] {
            let err = Endpoint::parse(bad).unwrap_err().to_string();
            assert!(err.contains("protocol violation"), "{bad}: {err}");
        }
    }

    #[test]
    fn endpoint_display_round_trips_through_parse() {
        for spec in ["unix:/tmp/e.sock", "tcp:10.0.0.1:99", "http:10.0.0.1:99"] {
            let endpoint = Endpoint::parse(spec).unwrap();
            assert_eq!(endpoint.to_string(), spec);
            assert_eq!(Endpoint::parse(&endpoint.to_string()).unwrap(), endpoint);
        }
    }

    #[test]
    fn pipelined_sessions_refuse_http_endpoints() {
        let err = match PipelinedClient::connect(&Endpoint::http("127.0.0.1:1")) {
            Ok(_) => panic!("http endpoint must not open a pipelined session"),
            Err(err) => err.to_string(),
        };
        assert!(err.contains("binary endpoint"), "{err}");
    }
}
