//! Consistent-hash ring for the fleet router (`ease route`).
//!
//! The router shards graphs across backends by fingerprint so repeat
//! queries for a graph always land on the same backend — that backend's
//! property cache (PR 3) and stat-keyed fingerprint memo (PR 6) stay warm
//! for *its* slice of graphs, which is the whole perf argument for
//! sharding over round-robin. A consistent ring (vs `hash % n`) keeps
//! that affinity when the fleet changes: adding or removing one backend
//! remaps only ~`1/n` of the keyspace instead of reshuffling everything,
//! so a fleet resize does not flush every backend's caches at once.
//!
//! Mechanics: each backend contributes [`HashRing::DEFAULT_VNODES`]
//! virtual points on a `u64` circle (hashing its label with the vnode
//! index); a key is owned by the first point clockwise from it. Virtual
//! nodes smooth the ownership shares — with a single point per backend
//! the largest arc is routinely several times the fair share; with 64 the
//! balance proptest (`tests/router.rs`) holds every backend under 2x.
//!
//! [`HashRing::successors`] yields *distinct* backends in ring order
//! starting at the owner — the router's failover order when the owner is
//! marked down (idempotent requests retry on the next node).

/// Stable 64-bit content hash: FNV-1a over the bytes, finished with a
/// splitmix64 avalanche so closely related labels ("backend-1",
/// "backend-2") still land far apart on the circle. Deliberately not
/// `DefaultHasher`, which is randomly seeded per process — ring layout
/// must be identical across router restarts or every restart is a fleet
/// resize.
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix64(h)
}

/// splitmix64 finalizer — bijective avalanche over a `u64`.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over `n` backends (see the module docs).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// All virtual points, sorted by position: `(position, backend)`.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Virtual points per backend. 64 keeps the balance bound (no backend
    /// over 2x fair share, pinned by proptest) while a 4-backend ring
    /// stays a 256-entry binary search — placement cost is noise next to
    /// a socket round-trip.
    pub const DEFAULT_VNODES: usize = 64;

    /// Ring over `labels` with [`Self::DEFAULT_VNODES`] points each.
    /// Backend indices follow label order.
    pub fn new<S: AsRef<str>>(labels: &[S]) -> HashRing {
        HashRing::with_vnodes(labels, Self::DEFAULT_VNODES)
    }

    /// Ring with an explicit vnode count (≥ 1; tests exercise low counts).
    pub fn with_vnodes<S: AsRef<str>>(labels: &[S], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(labels.len() * vnodes);
        for (backend, label) in labels.iter().enumerate() {
            let base = hash64(label.as_ref().as_bytes());
            for vnode in 0..vnodes {
                points.push((mix64(base ^ mix64(vnode as u64)), backend));
            }
        }
        // position ties (astronomically rare) resolve by backend index so
        // the layout is deterministic regardless of input order
        points.sort_unstable();
        points.dedup();
        HashRing { points, backends: labels.len() }
    }

    /// Number of backends on the ring.
    pub fn len(&self) -> usize {
        self.backends
    }

    pub fn is_empty(&self) -> bool {
        self.backends == 0
    }

    /// The backend owning `key`: the first virtual point clockwise from
    /// it (wrapping). `None` only for an empty ring.
    pub fn node_for(&self, key: u64) -> Option<usize> {
        let at = self.points.partition_point(|&(pos, _)| pos < key);
        self.points.get(at).or_else(|| self.points.first()).map(|&(_, backend)| backend)
    }

    /// Distinct backends in ring order starting at `key`'s owner — the
    /// failover order for a request keyed by `key`. Always yields every
    /// backend exactly once.
    pub fn successors(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends);
        let mut seen = vec![false; self.backends];
        let start = self.points.partition_point(|&(pos, _)| pos < key);
        for i in 0..self.points.len() {
            let at = (start + i) % self.points.len().max(1);
            if let Some(&(_, backend)) = self.points.get(at) {
                if let Some(flag) = seen.get_mut(backend) {
                    if !*flag {
                        *flag = true;
                        order.push(backend);
                    }
                }
            }
            if order.len() == self.backends {
                break;
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new::<String>(&[]);
        assert!(ring.is_empty());
        assert_eq!(ring.node_for(42), None);
        assert!(ring.successors(42).is_empty());
    }

    #[test]
    fn single_backend_owns_everything() {
        let ring = HashRing::new(&["only:1"]);
        assert_eq!(ring.len(), 1);
        for key in [0, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(ring.node_for(key), Some(0));
            assert_eq!(ring.successors(key), vec![0]);
        }
    }

    #[test]
    fn placement_is_deterministic_and_wraps() {
        let a = HashRing::new(&labels(4));
        let b = HashRing::new(&labels(4));
        for key in (0..1000u64).map(mix64) {
            assert_eq!(a.node_for(key), b.node_for(key));
        }
        // a key past the last point wraps to the first
        let last = a.points.last().map(|&(pos, _)| pos).unwrap_or(0);
        if last < u64::MAX {
            assert_eq!(a.node_for(last + 1), a.points.first().map(|&(_, b)| b));
        }
    }

    #[test]
    fn successors_visit_every_backend_once_starting_at_the_owner() {
        let ring = HashRing::new(&labels(5));
        for key in (0..200u64).map(|i| mix64(i ^ 0xdead)) {
            let order = ring.successors(key);
            assert_eq!(order.first().copied(), ring.node_for(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>(), "each backend exactly once");
        }
    }

    #[test]
    fn hash64_is_stable_across_builds() {
        // pinned values: a silent hash change would shuffle every fleet's
        // placement on upgrade, which is exactly what the ring exists to
        // avoid — fail loudly instead
        assert_eq!(hash64(b""), mix64(0xcbf2_9ce4_8422_2325));
        assert_eq!(hash64(b"a"), hash64(b"a"));
        assert_ne!(hash64(b"127.0.0.1:7000"), hash64(b"127.0.0.1:7001"));
    }
}
