//! The daemon side of `ease serve`: endpoint binding, the accept loops,
//! and one generic connection loop shared by the unix and TCP listeners.
//!
//! Threading model (all bounds from [`ServeConfig`]):
//!
//! ```text
//! unix accept ─┐                         ┌─ connection worker ─┐
//!              ├─▶ bounded conn hand-off ┤ (sniffs v1/v2/HTTP) │
//!  tcp accept ─┘                         └─ connection worker ─┘
//!                                                 │ v2 + HTTP jobs
//!                                                 ▼
//!                                    bounded request queue
//!                                                 │
//!                                        request executors ──▶ per-connection
//!                                                              writer thread
//! ```
//!
//! * **v1 connections** (one-shot) are answered inline by the connection
//!   worker, exactly as PR 5 did — same latency, same bytes.
//! * **HTTP connections** (`GET `/`POST` sniffed exactly like a frame
//!   magic) run `serve/http.rs`'s keep-alive loop on the connection
//!   worker; each parsed request executes on the shared executor pool
//!   through the same `answer` path, so shutdown interception, the served
//!   counter and `Handler` dispatch are format-independent.
//! * **v2 connections** (pipelined) turn their connection worker into a
//!   frame *reader*: each decoded request becomes a job on the shared
//!   executor queue, and a dedicated writer thread streams completed
//!   responses back tagged with their request ids — out of order when a
//!   later request finishes first. A bounded in-flight window per
//!   connection provides backpressure: a client that stops reading blocks
//!   only its own reader, never the executors or the accept loops.
//! * **Shutdown** is a `SeqCst` flag re-checked at every blocking point
//!   (accept hand-off, idle frame reads, the in-flight window) within
//!   [`SHUTDOWN_POLL`], so a shutdown request drains the daemon promptly
//!   even when every worker is pinned and the hand-off queue is full.

use super::http;
use super::protocol::{
    decode_request, encode_response, read_frame_after_magic, read_frame_v2_after_magic,
    resolve_graph_path, write_frame, write_frame_v2, Request, Response, ServeStats, FRAME_MAGIC,
    FRAME_MAGIC_V2, PROTOCOL_VERSION,
};
use super::{ServeConfig, ServeSummary};
use crate::error::EaseError;
use crate::service::EaseService;
use std::path::Path;
use std::sync::Arc;

/// How often blocked server internals re-check the shutdown flag. This
/// bounds the extra shutdown latency added by an idle or stalled peer —
/// the old code could park the accept thread (and any worker without an
/// I/O timeout) indefinitely.
pub const SHUTDOWN_POLL: std::time::Duration = std::time::Duration::from_millis(100);

#[cfg(unix)]
pub use unix_server::{serve, ServerHandle};
#[cfg(unix)]
pub(crate) use unix_server::{serve_with_handler, Handler};

#[cfg(unix)]
mod unix_server {
    use super::*;
    use crate::error::ServeError;
    use ease_graph::{open_path, PreparedGraph, PropertyTier};
    use ease_procsim::Workload;
    use std::collections::HashMap;
    use std::io::{ErrorKind, Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{mpsc, Condvar, Mutex, PoisonError};
    use std::thread::JoinHandle;
    use std::time::Duration;

    /// How long the accept thread sleeps between `try_send` retries while
    /// the connection hand-off is full.
    const HANDOFF_POLL: Duration = Duration::from_millis(1);

    /// What a server *does* with a decoded request, separated from how
    /// connections are accepted, sniffed, framed, pipelined and shut
    /// down. The daemon answers locally ([`LocalHandler`] via [`serve`]);
    /// the fleet router forwards to backends
    /// ([`route`](crate::serve::router::route)). [`Request::Shutdown`]
    /// never reaches a handler — the connection machinery intercepts it
    /// (the flag and the accept-loop pokes are its business) and calls
    /// [`Handler::on_shutdown`] so the handler can propagate it.
    pub(crate) trait Handler: Send + Sync {
        /// Answer one request. `served_so_far` is the server's request
        /// counter at dispatch time (the `cache-stats` answer reports it).
        fn handle(&self, request: Request, served_so_far: u64) -> Response;

        /// Shutdown was requested — by a client frame or by the owning
        /// process. May be called more than once; implementations must be
        /// idempotent.
        fn on_shutdown(&self) {}
    }

    /// One accepted connection, transport-erased. The generic connection
    /// loop only needs framed reads/writes, per-direction timeouts, and a
    /// second handle for the pipelined writer thread.
    trait Conn: Read + Write + Send {
        fn try_clone_conn(&self) -> std::io::Result<Box<dyn Conn>>;
        fn set_read_timeout_conn(&self, t: Option<Duration>);
        fn set_write_timeout_conn(&self, t: Option<Duration>);
    }

    impl Conn for UnixStream {
        fn try_clone_conn(&self) -> std::io::Result<Box<dyn Conn>> {
            Ok(Box::new(self.try_clone()?))
        }
        fn set_read_timeout_conn(&self, t: Option<Duration>) {
            self.set_read_timeout(t).ok();
        }
        fn set_write_timeout_conn(&self, t: Option<Duration>) {
            self.set_write_timeout(t).ok();
        }
    }

    impl Conn for TcpStream {
        fn try_clone_conn(&self) -> std::io::Result<Box<dyn Conn>> {
            Ok(Box::new(self.try_clone()?))
        }
        fn set_read_timeout_conn(&self, t: Option<Duration>) {
            self.set_read_timeout(t).ok();
        }
        fn set_write_timeout_conn(&self, t: Option<Duration>) {
            self.set_write_timeout(t).ok();
        }
    }

    /// Where a finished response goes. The executor pool is shared by
    /// every request source; only the last hop differs per protocol.
    enum RespSink {
        /// v2 pipelined: binary-encode and tag with the request id for
        /// the session's writer thread.
        Framed(mpsc::SyncSender<(u64, Vec<u8>)>),
        /// HTTP: hand the typed [`Response`] back to the session loop,
        /// which owns the JSON envelope and status mapping.
        Value(mpsc::SyncSender<Response>),
    }

    /// One unit of executor work: a decoded request plus the id to tag
    /// the answer with and the owning connection's response sink.
    struct Job {
        id: u64,
        request: Request,
        sink: RespSink,
    }

    /// Counting semaphore bounding one connection's in-flight requests
    /// (executing or queued for write). Acquired by the reader before
    /// admitting a request, released by the writer after the response
    /// leaves (or is discarded on a dead connection) — so "in flight"
    /// covers the whole request lifetime and executor sends into the
    /// equally-sized response channel can never block.
    struct InFlight {
        cap: usize,
        count: Mutex<usize>,
        cv: Condvar,
    }

    impl InFlight {
        fn new(cap: usize) -> InFlight {
            InFlight { cap: cap.max(1), count: Mutex::new(0), cv: Condvar::new() }
        }

        /// Take a slot; returns `false` if shutdown was requested while
        /// waiting (a full window during shutdown means the client stopped
        /// reading — don't let it pin the reader).
        fn acquire(&self, shared: &Shared) -> bool {
            // the in-flight count is a plain integer: a panicking holder
            // cannot leave it logically broken, so recover from poison
            // instead of cascading the panic through every worker
            let mut n = self.count.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if *n < self.cap {
                    *n += 1;
                    return true;
                }
                if shared.is_shutting_down_now() {
                    return false;
                }
                let (guard, _) =
                    self.cv.wait_timeout(n, SHUTDOWN_POLL).unwrap_or_else(PoisonError::into_inner);
                n = guard;
            }
        }

        fn release(&self) {
            let mut n = self.count.lock().unwrap_or_else(PoisonError::into_inner);
            *n = n.saturating_sub(1);
            drop(n);
            self.cv.notify_one();
        }
    }

    struct Shared {
        /// What to do with decoded requests — the daemon's local answerer
        /// or the fleet router's forwarder. Everything else in here is
        /// connection machinery, identical for both.
        handler: Arc<dyn Handler>,
        socket: Option<PathBuf>,
        tcp_addr: Option<SocketAddr>,
        /// Shutdown flag. Every access uses `SeqCst` (PR 6 bugfix: the
        /// store and the accept-loop load were `SeqCst` while
        /// `is_shutting_down` read `Relaxed`). The flag is a cold-path
        /// control signal read a few times per second per thread, so the
        /// strongest ordering costs nothing and buys the simplest
        /// contract: all threads observe the store in a single total
        /// order, and no flag load can be reordered ahead of the poke
        /// that published it.
        shutdown: AtomicBool,
        served: AtomicU64,
        io_timeout: Option<Duration>,
        pipeline_in_flight: usize,
        /// flock guard on `<socket>.lock`, held for the daemon's lifetime
        /// (see [`bind_unix`]); the kernel releases it on drop or crash.
        _socket_lock: Option<std::fs::File>,
    }

    /// The daemon's request handler: answers queries against a local
    /// [`EaseService`], accelerated by the stat-keyed fingerprint memo
    /// and bounded by the shared memory budget.
    struct LocalHandler {
        service: Arc<EaseService>,
        /// Stat-keyed fingerprint memo (see [`ServeConfig::fingerprint_memo`]
        /// and [`LocalHandler::recommend_answer`]); `None` when disabled.
        graph_memo: Option<Mutex<HashMap<PathBuf, MemoEntry>>>,
        /// Shared memory budget for per-request derived state (see
        /// [`ServeConfig::memory_budget`]): all concurrently-executing
        /// requests charge the same pool, so total daemon CSR heap stays
        /// bounded no matter how many workers analyze large graphs at once.
        memory_budget: Option<Arc<ease_graph::MemoryBudget>>,
    }

    /// Bound on resident [`MemoEntry`]s. Each is a path plus a few words;
    /// overflow evicts an arbitrary entry (the memo is a pure accelerator,
    /// eviction only costs one re-hash).
    const GRAPH_MEMO_CAPACITY: usize = 256;

    /// Identity stamp of a graph file at one point in time. Two stats
    /// agreeing on all four fields mean the same bytes for any writer
    /// that replaces or appends to files the normal way: a rewrite
    /// changes `mtime` (and usually `size`), a rename-over changes `ino`.
    #[derive(Clone, Copy, PartialEq, Eq)]
    struct FileStamp {
        dev: u64,
        ino: u64,
        size: u64,
        mtime_s: i64,
        mtime_ns: i64,
    }

    fn file_stamp(path: &Path) -> Option<FileStamp> {
        use std::os::unix::fs::MetadataExt;
        let md = std::fs::metadata(path).ok()?;
        md.is_file().then(|| FileStamp {
            dev: md.dev(),
            ino: md.ino(),
            size: md.size(),
            mtime_s: md.mtime(),
            mtime_ns: md.mtime_nsec(),
        })
    }

    /// What the daemon remembers about a graph file it has already hashed:
    /// enough to answer a repeat recommend query without reopening it —
    /// the fingerprint keys the service's property cache, `|V|`/`|E|`
    /// reproduce the answer header bit-for-bit.
    struct MemoEntry {
        stamp: FileStamp,
        fingerprint: u64,
        num_vertices: usize,
        edge_count: usize,
    }

    impl Shared {
        fn is_shutting_down_now(&self) -> bool {
            self.shutdown.load(Ordering::SeqCst)
        }
    }

    /// A running daemon: the accept loop(s), the connection-worker pool
    /// and the request-executor pool. Keep the handle and
    /// [`ServerHandle::join`] it; dropping the handle leaves the threads
    /// serving detached.
    pub struct ServerHandle {
        shared: Arc<Shared>,
        accepts: Vec<JoinHandle<()>>,
        conn_workers: Vec<JoinHandle<()>>,
        executors: Vec<JoinHandle<()>>,
        /// Auxiliary threads adopted via [`ServerHandle::adopt_thread`]
        /// (the router's health checker), joined last.
        extra: Vec<JoinHandle<()>>,
    }

    impl ServerHandle {
        /// The unix socket path, when one is bound.
        pub fn socket_path(&self) -> Option<&Path> {
            self.shared.socket.as_deref()
        }

        /// The actual TCP listen address, when one is bound (resolves
        /// port 0 to the ephemeral port the kernel picked).
        pub fn tcp_addr(&self) -> Option<SocketAddr> {
            self.shared.tcp_addr
        }

        /// Requests answered so far.
        pub fn requests_served(&self) -> u64 {
            self.shared.served.load(Ordering::Relaxed) // lint: relaxed-ok(monotonic stats counter)
        }

        /// Whether a shutdown has been requested (by a client or locally).
        pub fn is_shutting_down(&self) -> bool {
            // SeqCst like every other access to the flag — see `Shared`
            self.shared.is_shutting_down_now()
        }

        /// Request shutdown from the owning process (equivalent to a client
        /// sending [`Request::Shutdown`]).
        pub fn trigger_shutdown(&self) {
            request_shutdown(&self.shared);
        }

        /// Hand the server an auxiliary thread to join during
        /// [`ServerHandle::join`] — the router parks its health checker
        /// here. The thread must exit once shutdown is requested.
        pub(crate) fn adopt_thread(&mut self, handle: JoinHandle<()>) {
            self.extra.push(handle);
        }

        /// Wait for the daemon to drain (a shutdown must have been
        /// requested, or this blocks until one is), then remove the socket
        /// file and return the final counters.
        pub fn join(self) -> Result<ServeSummary, EaseError> {
            let mut panicked = false;
            for accept in self.accepts {
                panicked |= accept.join().is_err();
            }
            for worker in self.conn_workers {
                panicked |= worker.join().is_err();
            }
            for executor in self.executors {
                panicked |= executor.join().is_err();
            }
            for aux in self.extra {
                panicked |= aux.join().is_err();
            }
            if let Some(socket) = &self.shared.socket {
                std::fs::remove_file(socket).ok();
            }
            // the `.lock` file stays on disk on purpose: unlinking a
            // lockfile reopens the classic relock race (another daemon
            // opens the old inode while a third creates a fresh file).
            // Its flock releases when `shared` drops.
            if panicked {
                return Err(ServeError::Protocol("a server thread panicked".into()).into());
            }
            // lint: relaxed-ok(all workers joined above; their counts are visible via the joins)
            Ok(ServeSummary { requests_served: self.shared.served.load(Ordering::Relaxed) })
        }
    }

    /// Flag the shutdown and poke every accept loop awake with a
    /// throwaway connection (idempotent; errors ignored — the listeners
    /// may already be gone).
    fn request_shutdown(shared: &Shared) {
        shared.shutdown.store(true, Ordering::SeqCst);
        // let the handler propagate (the router forwards Shutdown
        // fleet-wide); idempotent by the trait contract
        shared.handler.on_shutdown();
        if let Some(socket) = &shared.socket {
            UnixStream::connect(socket).ok();
        }
        if let Some(addr) = shared.tcp_addr {
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok();
        }
    }

    /// The lockfile guarding a socket path: `<socket>.lock` next to it.
    fn lock_path_for(socket: &Path) -> PathBuf {
        let mut name =
            socket.file_name().map(|n| n.to_os_string()).unwrap_or_else(|| "ease.sock".into());
        name.push(".lock");
        socket.with_file_name(name)
    }

    /// Bind the unix socket behind a lifetime-held flock on
    /// `<socket>.lock`. The flock closes the PR 5 TOCTOU: the old code
    /// probed the socket, removed it when the probe failed, and bound —
    /// two daemons racing the same path could both see a stale probe, and
    /// the loser's `remove_file` would unlink the winner's freshly bound
    /// live socket. Now probe+remove+bind happen only while holding the
    /// exclusive lock, a second daemon fails `try_lock` with a typed
    /// [`ServeError::Bind`] instead of unlinking anything, and a crashed
    /// daemon's lock is released by the kernel automatically (no stale
    /// lockfile problem — the file itself is never unlinked, only its
    /// flock matters).
    fn bind_unix(socket: &Path) -> Result<(std::fs::File, UnixListener), EaseError> {
        let bind_err = |message: String| {
            EaseError::from(ServeError::Bind { socket: socket.display().to_string(), message })
        };
        let lock_path = lock_path_for(socket);
        let lock = std::fs::File::options()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&lock_path)
            .map_err(|e| bind_err(format!("cannot open lockfile {}: {e}", lock_path.display())))?;
        match lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(bind_err("another daemon is already serving this socket".into()));
            }
            Err(std::fs::TryLockError::Error(e)) => {
                return Err(bind_err(format!("cannot lock {}: {e}", lock_path.display())));
            }
        }
        // Holding the flock, no *ease* daemon can race this section; the
        // probe still catches a foreign process squatting the path.
        if socket.exists() {
            if UnixStream::connect(socket).is_ok() {
                return Err(bind_err("another daemon is already serving this socket".into()));
            }
            std::fs::remove_file(socket)
                .map_err(|e| bind_err(format!("cannot replace stale socket file: {e}")))?;
        }
        let listener = UnixListener::bind(socket).map_err(|e| bind_err(e.to_string()))?;
        Ok((lock, listener))
    }

    /// Bind the configured endpoints and start serving `service`. Returns
    /// once the daemon is accepting (a client connecting after this call
    /// will be served). A stale socket file from a dead daemon is
    /// replaced; a *live* daemon on the same path is a typed
    /// [`ServeError::Bind`].
    pub fn serve(
        service: Arc<EaseService>,
        config: ServeConfig,
    ) -> Result<ServerHandle, EaseError> {
        let handler = Arc::new(LocalHandler {
            service,
            graph_memo: config.fingerprint_memo.then(|| Mutex::new(HashMap::new())),
            memory_budget: config.memory_budget.clone(),
        });
        serve_with_handler(handler, config)
    }

    /// [`serve`] with the request handler abstracted: the whole listening
    /// stack — endpoint binding, accept loops, magic sniffing, the v1 and
    /// v2 connection loops, pipelining, backpressure and shutdown — runs
    /// unchanged whether requests are answered locally (the daemon) or
    /// forwarded to a backend fleet (the router).
    pub(crate) fn serve_with_handler(
        handler: Arc<dyn Handler>,
        config: ServeConfig,
    ) -> Result<ServerHandle, EaseError> {
        if config.socket.is_none() && config.tcp.is_none() {
            return Err(EaseError::InvalidConfig(
                "serve needs a unix socket path or a TCP listen address".into(),
            ));
        }
        let (socket_lock, unix_listener) = match &config.socket {
            Some(socket) => {
                let (lock, listener) = bind_unix(socket)?;
                (Some(lock), Some(listener))
            }
            None => (None, None),
        };
        let tcp_listener =
            match &config.tcp {
                Some(addr) => Some(TcpListener::bind(addr).map_err(|e| ServeError::Bind {
                    socket: addr.clone(),
                    message: e.to_string(),
                })?),
                None => None,
            };
        let tcp_addr = tcp_listener.as_ref().and_then(|l| l.local_addr().ok());
        let workers = config.workers.max(2);
        let shared = Arc::new(Shared {
            handler,
            socket: config.socket.clone(),
            tcp_addr,
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            io_timeout: config.io_timeout,
            pipeline_in_flight: config.pipeline_in_flight.max(1),
            _socket_lock: socket_lock,
        });

        // Request executors: every pipelined request, from every
        // connection, is executed here — so one connection's requests run
        // concurrently (out-of-order completion) and the compute
        // concurrency bound is global, not per transport.
        let (req_tx, req_rx) = mpsc::sync_channel::<Job>(workers * 2);
        let req_rx = Arc::new(Mutex::new(req_rx));
        let mut executors = Vec::with_capacity(workers);
        for _ in 0..workers {
            let req_rx = Arc::clone(&req_rx);
            let shared = Arc::clone(&shared);
            executors.push(std::thread::spawn(move || loop {
                let next = req_rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                match next {
                    Ok(job) => execute(job, &shared),
                    Err(_) => break, // all connection workers gone: drained
                }
            }));
        }

        // Bounded hand-off: accepts queue here once every connection
        // worker is busy, so a flood of clients waits in the listen
        // backlog instead of ballooning daemon memory.
        let (conn_tx, conn_rx) = mpsc::sync_channel::<Box<dyn Conn>>(workers * 2);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut conn_workers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let conn_rx = Arc::clone(&conn_rx);
            let shared = Arc::clone(&shared);
            let req_tx = req_tx.clone();
            conn_workers.push(std::thread::spawn(move || loop {
                let next = conn_rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                match next {
                    Ok(stream) => handle_connection(stream, &shared, &req_tx),
                    Err(_) => break, // accept loops gone: drained, exit
                }
            }));
        }
        // executors exit (after draining) once every connection worker
        // has dropped its queue sender
        drop(req_tx);

        let mut accepts = Vec::new();
        if let Some(listener) = unix_listener {
            let tx = conn_tx.clone();
            let shared = Arc::clone(&shared);
            accepts.push(std::thread::spawn(move || {
                accept_loop(
                    || listener.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
                    &tx,
                    &shared,
                )
            }));
        }
        if let Some(listener) = tcp_listener {
            let tx = conn_tx.clone();
            let shared = Arc::clone(&shared);
            accepts.push(std::thread::spawn(move || {
                accept_loop(
                    || {
                        listener.accept().map(|(s, _)| {
                            // request/response frames are small; Nagle
                            // would add artificial latency to every answer
                            s.set_nodelay(true).ok();
                            Box::new(s) as Box<dyn Conn>
                        })
                    },
                    &tx,
                    &shared,
                )
            }));
        }
        drop(conn_tx);
        Ok(ServerHandle { shared, accepts, conn_workers, executors, extra: Vec::new() })
    }

    fn accept_loop(
        mut accept: impl FnMut() -> std::io::Result<Box<dyn Conn>>,
        tx: &mpsc::SyncSender<Box<dyn Conn>>,
        shared: &Shared,
    ) {
        loop {
            if shared.is_shutting_down_now() {
                break;
            }
            match accept() {
                Ok(conn) => {
                    if !hand_off(tx, conn, shared) {
                        break;
                    }
                }
                Err(_) => {
                    // accept can fail persistently (fd exhaustion:
                    // EMFILE/ENFILE); back off briefly instead of
                    // spinning a core until descriptors free up
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // dropping `tx` (and the listener) lets workers drain and exit
    }

    /// Shutdown-aware bounded hand-off (PR 6 bugfix). The old code parked
    /// the accept thread in a blocking `send` once every worker was busy
    /// and the buffer full; the shutdown poke then landed in the listen
    /// backlog and shutdown latency was unbounded. `try_send` plus a
    /// short sleep re-checks the flag, so shutdown interrupts a full
    /// queue within ~1 ms. Returns `false` when accepting should stop.
    fn hand_off(
        tx: &mpsc::SyncSender<Box<dyn Conn>>,
        mut conn: Box<dyn Conn>,
        shared: &Shared,
    ) -> bool {
        loop {
            if shared.is_shutting_down_now() {
                return false;
            }
            conn = match tx.try_send(conn) {
                Ok(()) => return true,
                Err(mpsc::TrySendError::Full(conn)) => conn,
                Err(mpsc::TrySendError::Disconnected(_)) => return false,
            };
            std::thread::sleep(HANDOFF_POLL);
        }
    }

    fn is_timeout(e: &std::io::Error) -> bool {
        matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
    }

    enum FirstByte {
        Byte(u8),
        /// EOF, a dead connection, a peer stalled past `evict_after`, or
        /// shutdown — in every case the connection is done.
        Close,
    }

    /// Read the first byte of the next frame, polling in [`SHUTDOWN_POLL`]
    /// slices so a peer that is merely *idle* cannot pin the thread across
    /// a shutdown (PR 6 bugfix: workers used to block in `read_exact`
    /// until the full I/O timeout — forever, with the timeout disabled).
    /// `evict_after` bounds how long an idle peer may hold the
    /// connection: the sniffing stage passes the I/O timeout (a peer that
    /// never sends a byte is evicted as before), pipelined sessions pass
    /// `None` (idling between requests is legitimate).
    fn poll_first_byte(
        stream: &mut Box<dyn Conn>,
        shared: &Shared,
        evict_after: Option<Duration>,
    ) -> FirstByte {
        stream.set_read_timeout_conn(Some(SHUTDOWN_POLL));
        let start = std::time::Instant::now();
        let mut byte = [0u8; 1];
        loop {
            if shared.is_shutting_down_now() {
                return FirstByte::Close;
            }
            match stream.read(&mut byte) {
                Ok(0) => return FirstByte::Close,
                Ok(_) => return FirstByte::Byte(byte[0]), // lint: panic-ok(fixed 1-byte buffer)
                Err(e) if is_timeout(&e) || e.kind() == ErrorKind::Interrupted => {
                    if let Some(limit) = evict_after {
                        if start.elapsed() >= limit {
                            return FirstByte::Close;
                        }
                    }
                }
                Err(_) => return FirstByte::Close,
            }
        }
    }

    /// One connection: sniff the first frame's magic and dispatch to the
    /// one-shot (v1) or pipelined (v2) loop. Protocol violations get a
    /// best-effort [`Response::Error`]; nothing in here can panic the
    /// worker on user input.
    fn handle_connection(
        mut stream: Box<dyn Conn>,
        shared: &Arc<Shared>,
        req_tx: &mpsc::SyncSender<Job>,
    ) {
        stream.set_write_timeout_conn(shared.io_timeout);
        let first = match poll_first_byte(&mut stream, shared, shared.io_timeout) {
            FirstByte::Byte(b) => b,
            // a bare connect/close (e.g. the shutdown poke, or a port
            // probe) is not worth an error frame
            FirstByte::Close => return,
        };
        stream.set_read_timeout_conn(shared.io_timeout);
        let mut second = [0u8; 1];
        if stream.read_exact(&mut second).is_err() {
            return;
        }
        let [second] = second;
        match [first, second] {
            FRAME_MAGIC => one_shot(stream, shared),
            FRAME_MAGIC_V2 => pipelined_session(stream, shared, req_tx),
            http::SNIFF_GET | http::SNIFF_POST => {
                http_session(stream, [first, second], shared, req_tx);
            }
            [a, b] => {
                // non-protocol peer: answer with a v1 error frame if it
                // is still listening, then close
                let ([v1a, v1b], [v2a, v2b]) = (FRAME_MAGIC, FRAME_MAGIC_V2);
                let msg = format!(
                    "serve error: protocol violation: bad frame magic {a:02x}{b:02x} \
                     (expected {v1a:02x}{v1b:02x}, {v2a:02x}{v2b:02x}, or an HTTP GET/POST)"
                );
                write_frame(&mut stream, &encode_response(&Response::Error(msg))).ok();
            }
        }
    }

    /// HTTP: serve requests sequentially on this connection (keep-alive),
    /// each executed on the shared executor pool through the same
    /// [`answer`] path as the binary protocols — so `Shutdown`
    /// interception, the served counter and the `Handler` dispatch are
    /// identical across all three wire formats. Between requests the loop
    /// re-sniffs shutdown-aware, exactly like the binary sessions.
    fn http_session(
        mut stream: Box<dyn Conn>,
        mut prefix: [u8; 2],
        shared: &Arc<Shared>,
        req_tx: &mpsc::SyncSender<Job>,
    ) {
        // rendezvous of one: the session waits for each answer in turn
        let (resp_tx, resp_rx) = mpsc::sync_channel::<Response>(1);
        loop {
            let mut submit = |request: Request| -> Option<Response> {
                shared.served.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(monotonic stats counter)
                let job = Job { id: 0, request, sink: RespSink::Value(resp_tx.clone()) };
                req_tx.send(job).ok()?;
                resp_rx.recv().ok()
            };
            if matches!(
                http::serve_one(&mut stream, prefix, &mut submit),
                http::SessionState::Close
            ) {
                break;
            }
            // keep-alive: wait for the next request's first byte without
            // pinning the worker across a shutdown
            let first = match poll_first_byte(&mut stream, shared, shared.io_timeout) {
                FirstByte::Byte(b) => b,
                FirstByte::Close => break,
            };
            stream.set_read_timeout_conn(shared.io_timeout);
            let mut second = [0u8; 1];
            if stream.read_exact(&mut second).is_err() {
                break;
            }
            prefix = [first, second[0]]; // lint: panic-ok(fixed 1-byte buffer)
            if prefix != http::SNIFF_GET && prefix != http::SNIFF_POST {
                // a peer that switches wire formats mid-connection is
                // desynced; close rather than guess
                break;
            }
        }
    }

    /// v1: read the one request, answer it inline, close — byte-for-byte
    /// the PR 5 behaviour.
    fn one_shot(mut stream: Box<dyn Conn>, shared: &Shared) {
        let response =
            match read_frame_after_magic(&mut stream).and_then(|bytes| decode_request(&bytes)) {
                Ok(request) => {
                    shared.served.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(monotonic stats counter)
                    answer(request, shared)
                }
                // peer vanished mid-frame: nothing to answer
                Err(EaseError::Serve(ServeError::Disconnected)) => return,
                Err(e) => Response::Error(e.to_string()),
            };
        let payload = encode_response(&response);
        // the peer may already be gone; that is its problem, not the pool's
        write_frame(&mut stream, &payload).ok();
    }

    /// v2: this connection worker becomes the session's frame reader.
    /// Every decoded request is admitted through the per-connection
    /// in-flight window and executed on the shared executor pool; a
    /// dedicated writer thread streams responses back as they complete,
    /// tagged with their request ids.
    fn pipelined_session(
        mut reader: Box<dyn Conn>,
        shared: &Arc<Shared>,
        req_tx: &mpsc::SyncSender<Job>,
    ) {
        let Ok(writer_stream) = reader.try_clone_conn() else { return };
        // the writer must stay joinable for graceful drain, so pipelined
        // sessions keep a write timeout even when io_timeout is disabled
        writer_stream
            .set_write_timeout_conn(shared.io_timeout.or(Some(super::super::DEFAULT_IO_TIMEOUT)));
        let window = shared.pipeline_in_flight;
        let (resp_tx, resp_rx) = mpsc::sync_channel::<(u64, Vec<u8>)>(window);
        let in_flight = Arc::new(InFlight::new(window));
        let writer = {
            let in_flight = Arc::clone(&in_flight);
            std::thread::spawn(move || writer_loop(writer_stream, resp_rx, &in_flight))
        };
        // the sniffer consumed the first frame's magic already
        let mut magic_pending = true;
        loop {
            if !magic_pending {
                match poll_first_byte(&mut reader, shared, None) {
                    // lint: panic-ok(const index into the fixed 2-byte magic)
                    FirstByte::Byte(b) if b == FRAME_MAGIC_V2[0] => {}
                    // a desynced peer, EOF, a dead socket, or shutdown
                    _ => break,
                }
                reader.set_read_timeout_conn(shared.io_timeout);
                let mut second = [0u8; 1];
                // lint: panic-ok(fixed 1-byte buffer and const index into the 2-byte magic)
                if reader.read_exact(&mut second).is_err() || second[0] != FRAME_MAGIC_V2[1] {
                    break;
                }
            }
            magic_pending = false;
            let (id, payload) = match read_frame_v2_after_magic(&mut reader) {
                Ok(frame) => frame,
                Err(_) => break, // truncated/oversized frame: desynced
            };
            // admission: blocks when `window` answers are outstanding, so
            // a client that stopped reading throttles only itself
            if !in_flight.acquire(shared) {
                break;
            }
            match decode_request(&payload) {
                Ok(request) => {
                    shared.served.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(monotonic stats counter)
                    let job = Job { id, request, sink: RespSink::Framed(resp_tx.clone()) };
                    if req_tx.send(job).is_err() {
                        in_flight.release();
                        break; // executors gone: shutdown drained past us
                    }
                }
                Err(e) => {
                    // a malformed payload in a well-framed request is
                    // answerable: the error goes back under its id (the
                    // permit guarantees this send cannot block)
                    let resp = encode_response(&Response::Error(e.to_string()));
                    if resp_tx.send((id, resp)).is_err() {
                        in_flight.release();
                        break;
                    }
                }
            }
        }
        // executors processing this connection's jobs hold `resp_tx`
        // clones; the writer drains every outstanding answer and exits
        // when the last clone drops
        drop(resp_tx);
        writer.join().ok();
    }

    fn writer_loop(
        mut stream: Box<dyn Conn>,
        resp_rx: mpsc::Receiver<(u64, Vec<u8>)>,
        in_flight: &InFlight,
    ) {
        let mut dead = false;
        while let Ok((id, payload)) = resp_rx.recv() {
            if !dead && write_frame_v2(&mut stream, id, &payload).is_err() {
                // client gone or stalled past the write timeout: keep
                // draining so permits release and the reader winds down
                dead = true;
            }
            in_flight.release();
        }
    }

    fn execute(job: Job, shared: &Shared) {
        let response = answer(job.request, shared);
        // a send error just means the session already wound down
        match job.sink {
            // the permit held for this job guarantees the bounded send fits
            RespSink::Framed(tx) => {
                tx.send((job.id, encode_response(&response))).ok();
            }
            // rendezvous of one: the HTTP session is blocked on this recv
            RespSink::Value(tx) => {
                tx.send(response).ok();
            }
        }
    }

    fn answer(request: Request, shared: &Shared) -> Response {
        match request {
            // Shutdown is the connection machinery's business — the flag,
            // the accept-loop pokes, the handler notification — so it
            // never reaches `Handler::handle`
            Request::Shutdown => {
                request_shutdown(shared);
                Response::ShuttingDown
            }
            // lint: relaxed-ok(monotonic stats counter)
            other => shared.handler.handle(other, shared.served.load(Ordering::Relaxed)),
        }
    }

    impl Handler for LocalHandler {
        fn handle(&self, request: Request, served_so_far: u64) -> Response {
            match request {
                Request::Ping => Response::Pong { version: PROTOCOL_VERSION },
                Request::Recommend { graph, workload, k, goal, top, cwd } => {
                    match self.recommend_answer(&graph, &workload, k, goal, top, &cwd) {
                        Ok(text) => Response::Answer(text),
                        Err(e) => Response::Error(e.to_string()),
                    }
                }
                Request::Features { graph, tier, cwd } => {
                    match self.features_answer(&graph, tier, &cwd) {
                        Ok(text) => Response::Answer(text),
                        Err(e) => Response::Error(e.to_string()),
                    }
                }
                Request::CacheStats => {
                    let cache = self.service.property_cache_stats();
                    Response::CacheStats(ServeStats {
                        hits: cache.hits,
                        misses: cache.misses,
                        evictions: cache.evictions,
                        len: cache.len,
                        capacity: cache.capacity,
                        requests_served: served_so_far,
                        memory_budget_remaining: self
                            .memory_budget
                            .as_ref()
                            .map(|b| b.remaining() as u64),
                        spilled_csr_builds: self
                            .memory_budget
                            .as_ref()
                            .map_or(0, |b| b.spill_events()),
                    })
                }
                // intercepted by `answer` before dispatch; acknowledging
                // is still the honest reply if one ever slips through
                Request::Shutdown => Response::ShuttingDown,
            }
        }
    }

    impl LocalHandler {
        /// Answer a recommend query, skipping the graph open and the
        /// `O(|E|)` content hash when the daemon has served this exact file
        /// before. Warm queries are the daemon's whole reason to exist, and
        /// profiling shows the open+hash — not the model — dominates them.
        ///
        /// Correctness: the memo is keyed by the resolved path and guarded
        /// by a [`FileStamp`]; a rewritten file changes its stamp, so the
        /// daemon never renders a stale answer for new bytes. The remembered
        /// fingerprint is only a *cache key* — if the property cache has
        /// since evicted it, we fall back to the full open+hash path, which
        /// produces identical bytes (both paths render via
        /// [`render_selection`](super::render_selection)).
        fn recommend_answer(
            &self,
            graph: &str,
            workload: &str,
            k: Option<usize>,
            goal: crate::selector::OptGoal,
            top: usize,
            cwd: &Option<String>,
        ) -> Result<String, EaseError> {
            let service = &self.service;
            let workload = Workload::from_name(workload).ok_or_else(|| {
                EaseError::InvalidConfig(format!("unknown workload `{workload}`"))
            })?;
            let k = k.unwrap_or(service.meta().default_k);
            // resolve against the client's cwd, but display the path as the
            // client wrote it (one-shot answer parity)
            let path = resolve_graph_path(graph, cwd.as_deref());

            let stamped_memo =
                self.graph_memo.as_ref().and_then(|m| file_stamp(&path).map(|s| (m, s)));
            if let Some((memo, stamp)) = &stamped_memo {
                let remembered = {
                    let memo = memo.lock().unwrap_or_else(PoisonError::into_inner);
                    memo.get(&path)
                        .filter(|e| e.stamp == *stamp)
                        .map(|e| (e.fingerprint, e.num_vertices, e.edge_count))
                };
                if let Some((fingerprint, n, m)) = remembered {
                    if let Some(props) = service.try_cached_properties(fingerprint) {
                        let selection = service.recommend_with_k(&props, workload, k, goal)?;
                        return Ok(super::super::render_selection(
                            graph, n, m, workload, k, goal, top, selection,
                        ));
                    }
                }
            }

            let source = open_path(&path)?;
            let mut prepared = PreparedGraph::of_source(source.as_ref());
            if let Some(budget) = &self.memory_budget {
                prepared = prepared.with_memory_budget(Arc::clone(budget));
            }
            let selection = service.recommend_prepared_with_k(&prepared, workload, k, goal)?;
            let n = source.num_vertices();
            let m = source.edge_count();
            let out =
                super::super::render_selection(graph, n, m, workload, k, goal, top, selection);
            // memoize only if the file did not change while we read it: the
            // pre-open stamp still matching means the fingerprint we just
            // computed really describes the bytes that stamp names
            if let Some((memo, before)) = stamped_memo {
                if file_stamp(&path) == Some(before) {
                    let fingerprint = prepared.fingerprint();
                    let mut memo = memo.lock().unwrap_or_else(PoisonError::into_inner);
                    if memo.len() >= GRAPH_MEMO_CAPACITY && !memo.contains_key(&path) {
                        if let Some(evict) = memo.keys().next().cloned() {
                            memo.remove(&evict);
                        }
                    }
                    memo.insert(
                        path,
                        MemoEntry { stamp: before, fingerprint, num_vertices: n, edge_count: m },
                    );
                }
            }
            Ok(out)
        }

        fn features_answer(
            &self,
            graph: &str,
            tier: PropertyTier,
            cwd: &Option<String>,
        ) -> Result<String, EaseError> {
            let source = open_path(&resolve_graph_path(graph, cwd.as_deref()))?;
            super::super::render_features(graph, source.as_ref(), tier, self.memory_budget.as_ref())
        }
    }
}

#[cfg(not(unix))]
mod portable_stubs {
    use super::*;

    /// Handle stub on platforms without unix sockets. [`serve`] always
    /// fails there, so no value of this type can ever exist — the
    /// `Infallible` field makes that a type-level fact, and every method
    /// body is the empty match. Callers (`ease serve`, the bench bins,
    /// the serve test suites) compile unchanged on every platform.
    pub struct ServerHandle {
        never: std::convert::Infallible,
    }

    impl ServerHandle {
        pub fn socket_path(&self) -> Option<&Path> {
            match self.never {}
        }

        pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
            match self.never {}
        }

        pub fn requests_served(&self) -> u64 {
            match self.never {}
        }

        pub fn is_shutting_down(&self) -> bool {
            match self.never {}
        }

        pub fn trigger_shutdown(&self) {
            match self.never {}
        }

        pub fn join(self) -> Result<ServeSummary, EaseError> {
            match self.never {}
        }
    }

    /// The daemon needs unix-domain sockets for its control surface; the
    /// protocol codec and the TCP client still compile and round-trip for
    /// tests on every platform.
    pub fn serve(
        _service: Arc<EaseService>,
        _config: ServeConfig,
    ) -> Result<ServerHandle, EaseError> {
        Err(crate::error::ServeError::Unsupported.into())
    }
}

#[cfg(not(unix))]
pub use portable_stubs::{serve, ServerHandle};
