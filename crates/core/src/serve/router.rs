//! `ease route` — a consistent-hash router fronting a fleet of `ease
//! serve` backends.
//!
//! One daemon process tops out around the single-host warm-QPS ceiling
//! (PR 6); the router is the horizontal rung above it. It reuses the
//! *entire* daemon connection stack — endpoint binding, magic sniffing,
//! the v1/v2 connection loops, pipelining, backpressure, graceful
//! shutdown — via [`Handler`]; only the answer changes: instead of
//! analyzing graphs locally, the router forwards each request over one
//! multiplexed pipelined v2 connection per backend — concurrent
//! forwarders interleave their requests on it and responses demux back
//! by id, so one router connection occupies exactly one connection
//! worker on each backend no matter how many clients the router fans in.
//!
//! * **Placement** — requests are keyed by the graph *file identity*
//!   (`dev`/`ino` from a stat, falling back to the resolved path bytes)
//!   on a consistent-hash ring ([`HashRing`]). Repeat queries for a graph
//!   land on the same backend, so that backend's property cache and
//!   fingerprint memo stay warm for its shard — sharding for cache
//!   affinity, not just for load.
//! * **Health** — a background thread probes every backend each
//!   [`RouterConfig::health_interval`] with a `cache-stats` call (one
//!   probe doubles as liveness *and* a budget-headroom refresh). A failed
//!   probe marks the backend down and backs off exponentially with
//!   deterministic jitter; a successful probe marks it back up. Transport
//!   failures during forwarding mark down immediately — the next ring
//!   node takes over without waiting for a probe.
//! * **Failover** — every request the router forwards is idempotent
//!   (`Shutdown` never reaches the forwarding path; the connection
//!   machinery intercepts it), so a dead backend's requests simply retry
//!   on the next ring successor. Answers are rendered by the backends
//!   themselves, so a routed answer is bit-identical to a direct one.
//! * **Admission** — backends expose `memory_budget_remaining` in their
//!   `cache-stats` (PR 8's budget, PR 9's payload bump). A query whose
//!   estimated analysis footprint exceeds its primary's headroom routes
//!   to the next ring backend *with* headroom; when no healthy backend
//!   has room, the router answers a typed [`Response::Overloaded`]
//!   instead of forcing a backend to spill or OOM — shedding is a
//!   first-class answer, not a timeout.
//! * **Fleet stats** — `cache-stats` through the router folds every
//!   healthy backend's snapshot into one fleet-wide view
//!   ([`ServeStats::absorb`]).

use super::client::Endpoint;
use super::ServeConfig;
use std::time::Duration;

/// Default backend probe cadence (see [`RouterConfig::health_interval`]).
pub const DEFAULT_HEALTH_INTERVAL: Duration = Duration::from_millis(500);

/// Ceiling on the mark-down probe backoff: a downed backend is re-probed
/// at least this often no matter how long it has been failing.
pub const MAX_PROBE_BACKOFF: Duration = Duration::from_secs(10);

/// Fleet router configuration: where to listen, which backends to front,
/// and the health-check cadence.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The router's own listening endpoints and connection-pool bounds —
    /// the same shape the daemon uses, because the router *is* the daemon
    /// stack with a forwarding handler. `fingerprint_memo` and
    /// `memory_budget` are ignored (the backends own those).
    pub listen: ServeConfig,
    /// The backend fleet, each an `ease serve` daemon speaking v2.
    pub backends: Vec<Endpoint>,
    /// How often the health thread probes each healthy backend. Downed
    /// backends back off exponentially (jittered, capped at
    /// [`MAX_PROBE_BACKOFF`]) so a dead host is not hammered twice a
    /// second forever.
    pub health_interval: Duration,
    /// Forward a client `shutdown` to every backend (fleet-wide stop).
    /// Defaults on: the router fronting the fleet is the natural single
    /// control point. Off, a shutdown stops only the router.
    pub forward_shutdown: bool,
}

impl RouterConfig {
    pub fn new(listen: ServeConfig, backends: Vec<Endpoint>) -> RouterConfig {
        RouterConfig {
            listen,
            backends,
            health_interval: DEFAULT_HEALTH_INTERVAL,
            forward_shutdown: true,
        }
    }

    pub fn health_interval(mut self, interval: Duration) -> RouterConfig {
        self.health_interval = interval;
        self
    }

    pub fn forward_shutdown(mut self, forward: bool) -> RouterConfig {
        self.forward_shutdown = forward;
        self
    }
}

#[cfg(unix)]
pub use unix_router::route;

#[cfg(unix)]
mod unix_router {
    use super::super::client::{
        call_endpoint, Endpoint, PipelinedClient, PipelinedReceiver, PipelinedSender,
    };
    use super::super::protocol::{
        proto_err, resolve_graph_path, Request, Response, ServeStats, PROTOCOL_VERSION,
    };
    use super::super::ring::{hash64, mix64, HashRing};
    use super::super::server::{serve_with_handler, Handler, ServerHandle, SHUTDOWN_POLL};
    use super::{RouterConfig, MAX_PROBE_BACKOFF};
    use crate::error::EaseError;
    use std::collections::HashMap;
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// Consecutive transport failures before the probe backoff stops
    /// doubling (2^5 · interval, further capped by [`MAX_PROBE_BACKOFF`]).
    const MAX_BACKOFF_DOUBLINGS: u32 = 5;

    /// The one multiplexed connection a [`Backend`] keeps: split v2
    /// halves plus demux bookkeeping. Exactly one persistent connection
    /// per backend is load-bearing, not a simplification — the daemon
    /// dedicates a connection worker to every accepted connection for its
    /// lifetime, so a *pool* of parked-but-open connections would pin the
    /// whole backend worker set and starve every other connection
    /// (including health probes) out of the accept hand-off.
    struct MuxState {
        connected: bool,
        /// Bumped on every teardown. A forwarder that captured an older
        /// epoch knows its in-flight request died with the old socket.
        epoch: u64,
        /// Write half; taken (`None`) while a forwarder is mid-send.
        tx: Option<PipelinedSender>,
        /// Read half; taken (`None`) while a forwarder drains the socket
        /// on everyone's behalf.
        rx: Option<PipelinedReceiver>,
        /// Responses read off the socket for other forwarders' ids.
        arrived: HashMap<u64, Response>,
    }

    impl MuxState {
        /// Tear the connection down: both halves drop (borrowed halves
        /// are dropped by their borrowers on the epoch mismatch), parked
        /// responses die with the socket, waiters see the epoch bump.
        fn reset(&mut self) {
            self.connected = false;
            self.tx = None;
            self.rx = None;
            self.arrived.clear();
            self.epoch = self.epoch.wrapping_add(1);
        }
    }

    /// One backend of the fleet, as the router sees it.
    struct Backend {
        endpoint: Endpoint,
        /// `healthy` matches the ease-lint atomic control-flag policy:
        /// mark-down/mark-up crosses the forwarding/health-thread
        /// boundary, so every access is SeqCst — same contract as the
        /// server's shutdown flag.
        healthy: AtomicBool,
        /// The multiplexed connection (see [`MuxState`]). The guard is
        /// never held across socket I/O: both halves are moved out under
        /// the lock, used unlocked, and returned — a full send buffer
        /// must never wedge the receive side out of this mutex (that
        /// exact cycle deadlocks against the daemon's in-flight cap).
        conn: Mutex<MuxState>,
        /// Wakes forwarders waiting for a borrowed half or a demuxed
        /// response.
        wake: Condvar,
        /// Last `cache-stats` snapshot the health thread saw; admission
        /// reads budget headroom from here (at most one probe interval
        /// stale, which is fine — admission is a shed/steer heuristic,
        /// the backend's own budget is the hard enforcement).
        last_stats: Mutex<Option<ServeStats>>,
    }

    impl Backend {
        fn new(endpoint: Endpoint) -> Backend {
            Backend {
                endpoint,
                healthy: AtomicBool::new(true),
                conn: Mutex::new(MuxState {
                    connected: false,
                    epoch: 0,
                    tx: None,
                    rx: None,
                    arrived: HashMap::new(),
                }),
                wake: Condvar::new(),
                last_stats: Mutex::new(None),
            }
        }

        fn is_healthy(&self) -> bool {
            self.healthy.load(Ordering::SeqCst)
        }

        fn mark_down(&self) {
            self.healthy.store(false, Ordering::SeqCst);
            // the connection to a downed backend is poison — tear it
            // down so mark-up starts from a fresh socket, and so every
            // forwarder blocked on it errors out instead of hanging
            self.conn.lock().unwrap_or_else(PoisonError::into_inner).reset();
            self.wake.notify_all();
        }

        fn mark_up(&self, stats: ServeStats) {
            *self.last_stats.lock().unwrap_or_else(PoisonError::into_inner) = Some(stats);
            self.healthy.store(true, Ordering::SeqCst);
        }

        /// Budget headroom this backend last reported. `u64::MAX` when it
        /// runs without a budget (it cannot *refuse* work into a spill
        /// path) or before the first probe lands (admit optimistically —
        /// the backend enforces for real).
        fn headroom(&self) -> u64 {
            let stats = self.last_stats.lock().unwrap_or_else(PoisonError::into_inner);
            match *stats {
                Some(s) => s.memory_budget_remaining.unwrap_or(u64::MAX),
                None => u64::MAX,
            }
        }

        /// One request/response exchange over the multiplexed connection.
        /// Any number of forwarders call this concurrently; their
        /// requests interleave on one pipelined v2 session and each gets
        /// its own response back by id. `Err` is a transport or protocol
        /// failure (the backend is unreachable or desynced) — remote
        /// *answers*, including `Response::Error`, are `Ok`.
        fn call(&self, request: &Request) -> Result<Response, EaseError> {
            let (id, epoch) = self.send(request)?;
            self.receive(id, epoch)
        }

        fn reset_err(&self) -> EaseError {
            proto_err(format!("connection to backend {} reset mid-request", self.endpoint))
        }

        /// Send `request` on the shared connection, dialing it first if
        /// needed, and return `(id, epoch)` for [`Self::receive`].
        fn send(&self, request: &Request) -> Result<(u64, u64), EaseError> {
            let mut st = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !st.connected {
                    // dialing under the lock is deliberate: every caller
                    // needs this same connection, so none of them has
                    // anything useful to do until the dial resolves
                    let (tx, rx) = PipelinedClient::connect(&self.endpoint)?.split()?;
                    st.connected = true;
                    st.tx = Some(tx);
                    st.rx = Some(rx);
                }
                let Some(mut tx) = st.tx.take() else {
                    // another forwarder is mid-send; wait for the half
                    st = self.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
                    continue;
                };
                let epoch = st.epoch;
                drop(st);
                let result = tx.send(request);
                st = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
                let stale = st.epoch != epoch;
                match result {
                    Ok(id) if !stale => {
                        st.tx = Some(tx);
                        self.wake.notify_all();
                        return Ok((id, epoch));
                    }
                    // torn down while sending: the response can never
                    // arrive (the read half died with the old epoch)
                    Ok(_) => {
                        self.wake.notify_all();
                        return Err(self.reset_err());
                    }
                    Err(e) => {
                        if !stale {
                            st.reset();
                        }
                        self.wake.notify_all();
                        return Err(e);
                    }
                }
            }
        }

        /// Wait for the response to `id` sent at `epoch`: take a demuxed
        /// response if one already arrived, otherwise either become the
        /// receiver (drain the socket for everyone) or wait on whoever
        /// currently is.
        fn receive(&self, id: u64, epoch: u64) -> Result<Response, EaseError> {
            let mut st = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.epoch != epoch {
                    return Err(self.reset_err());
                }
                if let Some(response) = st.arrived.remove(&id) {
                    return Ok(response);
                }
                let Some(mut rx) = st.rx.take() else {
                    st = self.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
                    continue;
                };
                drop(st);
                let result = rx.recv_any();
                st = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
                let stale = st.epoch != epoch;
                match result {
                    Ok((rid, response)) if !stale => {
                        st.rx = Some(rx);
                        st.arrived.insert(rid, response);
                        self.wake.notify_all();
                        // loop: if rid == id the next arrival check wins
                    }
                    Ok(_) => {
                        self.wake.notify_all();
                        return Err(self.reset_err());
                    }
                    Err(e) => {
                        if !stale {
                            st.reset();
                        }
                        self.wake.notify_all();
                        return Err(e);
                    }
                }
            }
        }
    }

    struct RouterState {
        backends: Vec<Backend>,
        ring: HashRing,
        /// Set once by [`Handler::on_shutdown`]; the health thread polls
        /// it and exits. Matches the lint control-flag policy (`stop`).
        stop: AtomicBool,
        forward_shutdown: bool,
    }

    /// The router's request handler: everything the connection machinery
    /// decodes lands here and is answered by the fleet.
    struct RouterHandler {
        state: Arc<RouterState>,
    }

    impl Handler for RouterHandler {
        fn handle(&self, request: Request, _served_so_far: u64) -> Response {
            match request {
                // the router answers for its own liveness; backend
                // liveness is the health thread's business
                Request::Ping => Response::Pong { version: PROTOCOL_VERSION },
                Request::CacheStats => self.state.fleet_stats(),
                Request::Recommend { ref graph, ref cwd, .. } => {
                    let path = resolve_graph_path(graph, cwd.as_deref());
                    self.state.forward(&path, &request)
                }
                Request::Features { ref graph, ref cwd, .. } => {
                    let path = resolve_graph_path(graph, cwd.as_deref());
                    self.state.forward(&path, &request)
                }
                // intercepted by the connection machinery before dispatch
                // (which then calls `on_shutdown` below); acknowledging is
                // still the honest reply if one ever slips through
                Request::Shutdown => Response::ShuttingDown,
            }
        }

        fn on_shutdown(&self) {
            // idempotent: only the first caller forwards fleet-wide
            if self.state.stop.swap(true, Ordering::SeqCst) {
                return;
            }
            if self.state.forward_shutdown {
                for backend in &self.state.backends {
                    // best effort — a backend that is already down has
                    // nothing left to stop
                    call_endpoint(&backend.endpoint, &Request::Shutdown).ok();
                }
            }
        }
    }

    impl RouterState {
        /// Route `request` (an idempotent query about the graph file at
        /// `path`) to the fleet: ring-placed for cache affinity, skipping
        /// unhealthy backends, skipping backends without budget headroom
        /// for the query's estimated footprint, failing over to ring
        /// successors on transport errors.
        fn forward(&self, path: &Path, request: &Request) -> Response {
            let key = route_key(path);
            let needed = estimated_bytes(path);
            let mut best_headroom = 0u64;
            let mut any_healthy = false;
            let mut transport_errors: Vec<String> = Vec::new();
            for idx in self.ring.successors(key) {
                let Some(backend) = self.backends.get(idx) else { continue };
                if !backend.is_healthy() {
                    continue;
                }
                any_healthy = true;
                let headroom = backend.headroom();
                best_headroom = best_headroom.max(headroom);
                if let Some(needed) = needed {
                    if headroom < needed {
                        continue; // admission: steer past a saturated backend
                    }
                }
                match backend.call(request) {
                    Ok(response) => return response,
                    Err(e) => {
                        // transport failure: this backend is gone right
                        // now — mark it down (the health thread will mark
                        // it back up) and fail over to the next ring node
                        transport_errors.push(format!("{}: {e}", backend.endpoint));
                        backend.mark_down();
                    }
                }
            }
            match (any_healthy, needed) {
                // healthy backends exist but none has the headroom: shed
                // with the typed answer instead of forcing a spill/OOM
                (true, Some(needed)) if transport_errors.is_empty() => {
                    Response::Overloaded { needed, headroom: best_headroom }
                }
                _ => Response::Error(format!(
                    "fleet error: no healthy backend reachable for this query \
                     ({} of {} marked down{})",
                    self.backends.iter().filter(|b| !b.is_healthy()).count(),
                    self.backends.len(),
                    if transport_errors.is_empty() {
                        String::new()
                    } else {
                        format!("; transport errors: {}", transport_errors.join(", "))
                    }
                )),
            }
        }

        /// The fleet-wide `cache-stats` view: every healthy backend's
        /// snapshot folded into one (see [`ServeStats::absorb`]).
        fn fleet_stats(&self) -> Response {
            let mut fleet = ServeStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                len: 0,
                capacity: 0,
                requests_served: 0,
                memory_budget_remaining: None,
                spilled_csr_builds: 0,
            };
            let mut reached = 0usize;
            for backend in &self.backends {
                if !backend.is_healthy() {
                    continue;
                }
                match backend.call(&Request::CacheStats) {
                    Ok(Response::CacheStats(stats)) => {
                        backend.mark_up(stats);
                        fleet.absorb(&stats);
                        reached += 1;
                    }
                    Ok(_) => {} // a non-stats answer is a backend bug; skip it
                    Err(_) => backend.mark_down(),
                }
            }
            if reached == 0 {
                return Response::Error(
                    "fleet error: no healthy backend reachable for cache-stats".into(),
                );
            }
            Response::CacheStats(fleet)
        }

        fn stopped(&self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }
    }

    /// Placement key for the graph file at `path`: its filesystem
    /// identity (`dev`/`ino`) when it exists — stable across renames and
    /// identical for every client spelling of the same file — falling
    /// back to the resolved path bytes so nonexistent files still route
    /// deterministically (the backend renders the proper error).
    fn route_key(path: &Path) -> u64 {
        use std::os::unix::fs::MetadataExt;
        match std::fs::metadata(path) {
            Ok(md) => mix64(mix64(md.dev()) ^ md.ino()),
            Err(_) => hash64(path.as_os_str().as_encoded_bytes()),
        }
    }

    /// Estimated derived-state footprint of analyzing the graph at
    /// `path`.
    ///
    /// `.bel` files declare `|V|` and `|E|` in their header, so the
    /// estimate can be the thing admission actually guards: the heap
    /// charge of the undirected simple CSR the advanced property tier
    /// builds (`Csr::heap_bytes(|V|, 2·|E|)` — usize offsets plus two u32
    /// targets per edge). That is roughly *half* the `.bel` file's own
    /// size for edge-heavy graphs (the file stores two u64s per edge), so
    /// sniffing admits real queries the old file-size estimate shed.
    /// Anything without a well-formed `.bel` header (text edge lists,
    /// truncated files) falls back to the file size, a coarse
    /// over-approximation. `None` (unreadable/absent file) admits to the
    /// primary, which renders the real error.
    fn estimated_bytes(path: &Path) -> Option<u64> {
        let md = std::fs::metadata(path).ok()?;
        if !md.is_file() {
            return None;
        }
        Some(bel_csr_estimate(path).unwrap_or(md.len()))
    }

    /// The admission estimate declared by a well-formed `.bel` header:
    /// CSR offsets + undirected targets, saturating so a hostile header
    /// cannot overflow the arithmetic. `None` when the file does not start
    /// with a `.bel` header.
    fn bel_csr_estimate(path: &Path) -> Option<u64> {
        use ease_graph::bel::{BEL_HEADER_LEN, BEL_MAGIC};
        use std::io::Read;
        let mut header = [0u8; BEL_HEADER_LEN];
        std::fs::File::open(path).ok()?.read_exact(&mut header).ok()?;
        // lint: panic-ok(fixed 24-byte header array)
        if header[..8] != BEL_MAGIC {
            return None;
        }
        let num_vertices = u64::from_le_bytes(header[8..16].try_into().ok()?); // lint: panic-ok(fixed 24-byte header array)
        let num_edges = u64::from_le_bytes(header[16..24].try_into().ok()?); // lint: panic-ok(fixed 24-byte header array)
                                                                             // Csr::heap_bytes(|V|, 2·|E|): 8-byte offsets, 4-byte targets,
                                                                             // every edge appearing in both endpoints' lists
        let offsets = num_vertices.saturating_add(1).saturating_mul(8);
        let targets = num_edges.saturating_mul(8);
        Some(offsets.saturating_add(targets))
    }

    /// Start the fleet router: bind the configured listen endpoints, probe
    /// every backend once (so placement and admission start from real
    /// liveness/headroom, not assumptions), and spawn the health thread.
    /// The returned handle is the same type the daemon returns — join it,
    /// trigger shutdown on it, read its TCP address for port-0 binds.
    pub fn route(config: RouterConfig) -> Result<ServerHandle, EaseError> {
        if config.backends.is_empty() {
            return Err(EaseError::InvalidConfig(
                "route needs at least one --backend to front".into(),
            ));
        }
        let labels: Vec<String> = config.backends.iter().map(|e| e.to_string()).collect();
        let ring = HashRing::new(&labels);
        let backends: Vec<Backend> = config.backends.into_iter().map(Backend::new).collect();
        let state = Arc::new(RouterState {
            backends,
            ring,
            stop: AtomicBool::new(false),
            forward_shutdown: config.forward_shutdown,
        });
        // synchronous first probe round: a backend that is down at router
        // start is down from request one, and budget headroom is real
        // before the first client connects
        for backend in &state.backends {
            probe(backend);
        }
        let handler = Arc::new(RouterHandler { state: Arc::clone(&state) });
        let mut handle = serve_with_handler(handler, config.listen)?;
        let interval = config.health_interval.max(Duration::from_millis(10));
        handle.adopt_thread(std::thread::spawn(move || health_loop(&state, interval)));
        Ok(handle)
    }

    /// One health probe: a `cache-stats` exchange on a fresh connection
    /// (the multiplexed connection could be healthy while new connects fail —
    /// probing the connect path is the point). Refreshes headroom on
    /// success; marks down on failure.
    fn probe(backend: &Backend) -> bool {
        match call_endpoint(&backend.endpoint, &Request::CacheStats) {
            Ok(Response::CacheStats(stats)) => {
                backend.mark_up(stats);
                true
            }
            _ => {
                backend.mark_down();
                false
            }
        }
    }

    /// Background health checker: probes each backend on its own
    /// schedule — every `interval` while healthy, exponential backoff
    /// with deterministic jitter while down (capped at
    /// [`MAX_PROBE_BACKOFF`]) — and exits when shutdown is requested.
    fn health_loop(state: &RouterState, interval: Duration) {
        let n = state.backends.len();
        let mut consecutive_failures: Vec<u32> = vec![0; n];
        let mut next_probe: Vec<Instant> = vec![Instant::now() + interval; n];
        while !state.stopped() {
            std::thread::sleep(SHUTDOWN_POLL.min(interval));
            if state.stopped() {
                break;
            }
            let now = Instant::now();
            for (idx, backend) in state.backends.iter().enumerate() {
                let Some(due) = next_probe.get_mut(idx) else { continue };
                if now < *due {
                    continue;
                }
                let fails = consecutive_failures.get_mut(idx);
                if probe(backend) {
                    if let Some(fails) = fails {
                        *fails = 0;
                    }
                    *due = now + interval;
                } else {
                    let count = fails.map_or(1, |f| {
                        *f = f.saturating_add(1);
                        *f
                    });
                    *due = now + backoff(interval, count, idx);
                }
            }
        }
    }

    /// Jittered exponential backoff for a backend that has failed `count`
    /// consecutive probes: `interval · 2^min(count,5)`, capped at
    /// [`MAX_PROBE_BACKOFF`], plus a deterministic 0–25% jitter keyed on
    /// `(backend, count)` so a fleet of routers does not re-probe a
    /// recovering backend in lockstep.
    fn backoff(interval: Duration, count: u32, backend_idx: usize) -> Duration {
        let doubled = interval.saturating_mul(1 << count.min(MAX_BACKOFF_DOUBLINGS));
        let base = doubled.min(MAX_PROBE_BACKOFF);
        let jitter_num = mix64((backend_idx as u64) << 32 | count as u64) % 256;
        base + base.mul_f64(jitter_num as f64 / 1024.0)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn route_key_is_spelling_independent_and_stat_keyed() {
            let dir = std::env::temp_dir().join(format!("ease-route-key-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            let file = dir.join("g.txt");
            std::fs::write(&file, "0 1\n").expect("write");
            let direct = route_key(&file);
            // a dotted respelling of the same file stats to the same inode
            let dotted = dir.join(".").join("g.txt");
            assert_eq!(direct, route_key(&dotted));
            // a different file routes (astronomically likely) elsewhere
            let other = dir.join("h.txt");
            std::fs::write(&other, "0 1\n").expect("write");
            assert_ne!(direct, route_key(&other));
            // nonexistent files still key deterministically, by path
            let missing = dir.join("missing.txt");
            assert_eq!(route_key(&missing), route_key(&missing));
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn estimated_bytes_falls_back_to_file_size_or_none() {
            let dir = std::env::temp_dir().join(format!("ease-route-est-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            // headerless bytes (no .bel magic): coarse file-size estimate
            let file = dir.join("g.bel");
            std::fs::write(&file, vec![0u8; 4096]).expect("write");
            assert_eq!(estimated_bytes(&file), Some(4096));
            let text = dir.join("g.txt");
            std::fs::write(&text, "0 1\n1 2\n").expect("write");
            assert_eq!(estimated_bytes(&text), Some(8));
            assert_eq!(estimated_bytes(&dir.join("missing")), None);
            assert_eq!(estimated_bytes(&dir), None, "directories are not graphs");
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn bel_headers_estimate_the_csr_charge_not_the_file_size() {
            use ease_graph::bel::{BelWriter, BEL_EDGE_LEN, BEL_HEADER_LEN};
            let dir = std::env::temp_dir().join(format!("ease-route-bel-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            let file = dir.join("g.bel");
            let mut w = BelWriter::create(&file).expect("create .bel");
            let num_edges = 64u64;
            for i in 0..num_edges {
                w.push(ease_graph::Edge { src: (i % 8) as u32, dst: ((i + 1) % 8) as u32 })
                    .expect("push edge");
            }
            w.finish().expect("finish .bel");

            let file_size = std::fs::metadata(&file).expect("stat").len();
            assert_eq!(file_size, BEL_HEADER_LEN as u64 + num_edges * BEL_EDGE_LEN as u64);
            // offsets (8·(|V|+1)) + undirected u32 targets (8·|E|) — the
            // advanced tier's actual heap charge, about half the file
            let estimate = estimated_bytes(&file).expect("estimate");
            assert_eq!(estimate, (8 + 1) * 8 + num_edges * 8);
            assert!(estimate < file_size);

            // regression: a headroom between the CSR charge and the file
            // size used to shed this query (file-size estimate) and now
            // admits it (header-sniffed estimate)
            let headroom_between = (estimate + file_size) / 2;
            assert!(estimate <= headroom_between && headroom_between < file_size);
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn backoff_doubles_caps_and_jitters_deterministically() {
            let i = Duration::from_millis(100);
            assert!(backoff(i, 1, 0) >= Duration::from_millis(200));
            assert!(backoff(i, 1, 0) < Duration::from_millis(250));
            // capped: huge failure counts stop growing
            assert!(backoff(i, 30, 0) <= MAX_PROBE_BACKOFF + MAX_PROBE_BACKOFF.mul_f64(0.25));
            // deterministic: same inputs, same delay
            assert_eq!(backoff(i, 3, 2), backoff(i, 3, 2));
        }
    }
}

/// The router needs the unix daemon stack; see
/// [`ServeError::Unsupported`](crate::error::ServeError::Unsupported).
#[cfg(not(unix))]
pub fn route(_config: RouterConfig) -> Result<super::ServerHandle, crate::error::EaseError> {
    Err(crate::error::ServeError::Unsupported.into())
}
