//! Wire protocol for `ease serve` — transport-agnostic framing and the
//! versioned binary request/response codec.
//!
//! Two frame formats share one listener (the server sniffs the leading
//! magic of each connection's first frame):
//!
//! * **v1** (`[0xEA 0x5E][u32 LE len][payload]`): one request per
//!   connection, answered with a single v1 response frame. This is the
//!   PR 5 format; `ease client --socket` and the `--daemon` proxy still
//!   speak it, so old clients keep working unchanged.
//! * **v2** (`[0xEA 0x5F][u64 LE request-id][u32 LE len][payload]`):
//!   *pipelined* — many requests per connection, each tagged with a
//!   client-chosen `u64` id. Responses come back as v2 frames carrying the
//!   id of the request they answer and may arrive **out of order**: the
//!   server executes a connection's requests concurrently and writes each
//!   answer as it completes. Clients match responses to requests by id,
//!   never by arrival order.
//!
//! Payloads are identical in both formats: versioned binary [`Request`] /
//! [`Response`] values encoded with the same `Writer`/`Reader` codec the
//! model persistence uses, capped at [`MAX_FRAME_BYTES`].
//!
//! [`Request`] and [`Response`] are *pure data*; every wire spelling is a
//! codec at the edge of the type — `encode_binary`/`decode_binary` for the
//! framed formats above and `to_json`/`from_json` for the HTTP facade
//! (`serve/http.rs`). One definition, two codecs: parity between the
//! binary and JSON surfaces is structural, not coincidental.

use super::json::{self, Value};
use crate::error::{EaseError, ServeError};
use crate::selector::OptGoal;
use ease_graph::PropertyTier;
use ease_ml::persist::{Reader, Writer};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Version byte leading every payload; bumped on any payload-format change.
/// v2: [`ServeStats`] carries `memory_budget_remaining` +
/// `spilled_csr_builds` (PR 9, budget-aware fleet admission) and
/// [`Response::Overloaded`] exists.
pub const PROTOCOL_VERSION: u8 = 2;

/// Two magic bytes opening every v1 frame — rejects non-protocol peers
/// before a length is trusted.
pub const FRAME_MAGIC: [u8; 2] = [0xEA, 0x5E];

/// Two magic bytes opening every v2 (pipelined) frame. Distinct from
/// [`FRAME_MAGIC`] so the server can tell a one-shot peer from a
/// pipelined one on the first two bytes of a connection.
pub const FRAME_MAGIC_V2: [u8; 2] = [0xEA, 0x5F];

/// Upper bound on a frame payload. Requests carry paths and responses carry
/// rendered tables — a megabyte is generous, and the cap keeps a garbage
/// length prefix from asking a worker to allocate gigabytes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// How many candidate rows a recommendation renders by default (the CLI's
/// `--top` default).
pub const DEFAULT_TOP: usize = 5;

// ---------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------

/// One client request. Graph inputs travel *by path* (daemon and client
/// share a filesystem by construction — the transports are a unix socket
/// and a loopback-or-LAN TCP listener); the server opens text or mmap'd
/// `.bel` inputs through the same format-dispatched
/// [`open_path`](ease_graph::open_path) seam as the one-shot CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Recommend a partitioner for the graph at `graph`. `workload` is the
    /// CLI workload name (`pr`, `cc`, …), validated server-side; `k` of
    /// `None` means the service's default partition count. `cwd` is the
    /// *client's* working directory: the server resolves a relative
    /// `graph` against it (daemon and client share a filesystem but not a
    /// cwd), while the answer always displays `graph` as the client wrote
    /// it — keeping daemon output bit-identical to the one-shot CLI.
    Recommend {
        graph: String,
        workload: String,
        k: Option<usize>,
        goal: OptGoal,
        top: usize,
        cwd: Option<String>,
    },
    /// Extract and render the feature vector of the graph at `graph`
    /// (`cwd` as in [`Request::Recommend`]).
    Features { graph: String, tier: PropertyTier, cwd: Option<String> },
    /// Snapshot the warm property cache and serving counters.
    CacheStats,
    /// Stop accepting connections, drain in-flight work, remove the socket.
    Shutdown,
}

/// Observability snapshot answered to [`Request::CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub len: usize,
    pub capacity: usize,
    /// Requests answered so far (all kinds, including this one).
    pub requests_served: u64,
    /// Headroom left on the daemon's shared `--memory-budget` before the
    /// next CSR charge is refused into the spill path; `None` when the
    /// daemon runs without a budget, `u64::MAX` for an unlimited one. A
    /// fleet router steers big-graph queries by this field.
    pub memory_budget_remaining: Option<u64>,
    /// Lifetime count of CSR builds the budget refused into spill files
    /// (always 0 without a budget).
    pub spilled_csr_builds: u64,
}

impl ServeStats {
    /// The `ease client cache-stats` rendering.
    pub fn render(&self) -> String {
        let budget = match self.memory_budget_remaining {
            None => "none".to_string(),
            Some(u64::MAX) => "unlimited".to_string(),
            Some(remaining) => format!("{remaining} bytes remaining"),
        };
        format!(
            "property cache: hits={} misses={} evictions={} len={}/{}\n\
             memory budget: {budget} (spilled CSR builds: {})\n\
             requests served: {}\n",
            self.hits,
            self.misses,
            self.evictions,
            self.len,
            self.capacity,
            self.spilled_csr_builds,
            self.requests_served
        )
    }

    /// Fold another backend's snapshot into this one — the fleet view a
    /// router renders: counters sum, capacities sum, and the budget fields
    /// aggregate so `memory_budget_remaining` is the fleet-wide headroom
    /// (`None` only when *no* backend has a budget; an unlimited backend
    /// saturates the sum at `u64::MAX`).
    pub fn absorb(&mut self, other: &ServeStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.len += other.len;
        self.capacity += other.capacity;
        self.requests_served += other.requests_served;
        self.spilled_csr_builds += other.spilled_csr_builds;
        self.memory_budget_remaining =
            match (self.memory_budget_remaining, other.memory_budget_remaining) {
                (None, r) => r,
                (l, None) => l,
                (Some(l), Some(r)) => Some(l.saturating_add(r)),
            };
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Liveness answer carrying the server's protocol version.
    Pong { version: u8 },
    /// Rendered answer text, printed verbatim by clients — bit-identical
    /// to the one-shot CLI output for the same query.
    Answer(String),
    /// Cache and serving counters.
    CacheStats(ServeStats),
    /// The request failed; the message is the rendered [`EaseError`].
    Error(String),
    /// Shutdown acknowledged; the daemon drains and exits.
    ShuttingDown,
    /// A fleet router shed this query: its estimated analysis footprint
    /// (`needed` bytes) exceeds every healthy backend's remaining memory
    /// budget (`headroom` is the best available). Typed — clients map it
    /// to [`ServeError::Overloaded`] and can retry elsewhere/later —
    /// instead of the alternative, which is forcing a backend to spill
    /// or die.
    Overloaded { needed: u64, headroom: u64 },
}

// ---------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------

pub(crate) fn proto_err(msg: impl Into<String>) -> EaseError {
    ServeError::Protocol(msg.into()).into()
}

fn goal_tag(goal: OptGoal) -> u8 {
    match goal {
        OptGoal::EndToEnd => 0,
        OptGoal::ProcessingOnly => 1,
    }
}

fn goal_from_tag(tag: u8) -> Result<OptGoal, EaseError> {
    match tag {
        0 => Ok(OptGoal::EndToEnd),
        1 => Ok(OptGoal::ProcessingOnly),
        other => Err(proto_err(format!("unknown goal tag {other}"))),
    }
}

fn tier_tag(tier: PropertyTier) -> u8 {
    match tier {
        PropertyTier::Simple => 0,
        PropertyTier::Basic => 1,
        PropertyTier::Advanced => 2,
    }
}

fn tier_from_tag(tag: u8) -> Result<PropertyTier, EaseError> {
    match tag {
        0 => Ok(PropertyTier::Simple),
        1 => Ok(PropertyTier::Basic),
        2 => Ok(PropertyTier::Advanced),
        other => Err(proto_err(format!("unknown tier tag {other}"))),
    }
}

fn put_opt_str(w: &mut Writer, v: &Option<String>) {
    match v {
        Some(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        None => w.put_u8(0),
    }
}

fn take_opt_str(r: &mut Reader) -> Result<Option<String>, ease_ml::PersistError> {
    match r.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.take_str()?)),
        other => Err(ease_ml::PersistError::Corrupt(format!("unknown option tag {other}"))),
    }
}

/// Resolve a request's graph path: relative paths are joined to the
/// *client's* working directory when it travelled with the request —
/// the daemon's own cwd is an accident of where it was launched and must
/// never influence which file a client's query answers for.
pub fn resolve_graph_path(graph: &str, cwd: Option<&str>) -> PathBuf {
    let path = Path::new(graph);
    match cwd {
        Some(cwd) if path.is_relative() => Path::new(cwd).join(path),
        _ => path.to_path_buf(),
    }
}

impl Request {
    /// Serialize to the versioned binary payload (framing is separate;
    /// see [`write_frame`] and [`write_frame_v2`]).
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        match self {
            Request::Ping => w.put_u8(0),
            Request::Recommend { graph, workload, k, goal, top, cwd } => {
                w.put_u8(1);
                w.put_str(graph);
                w.put_str(workload);
                w.put_opt_usize(*k);
                w.put_u8(goal_tag(*goal));
                w.put_usize(*top);
                put_opt_str(&mut w, cwd);
            }
            Request::Features { graph, tier, cwd } => {
                w.put_u8(2);
                w.put_str(graph);
                w.put_u8(tier_tag(*tier));
                put_opt_str(&mut w, cwd);
            }
            Request::CacheStats => w.put_u8(3),
            Request::Shutdown => w.put_u8(4),
        }
        w.into_bytes()
    }

    /// Deserialize a binary request payload. Every malformation is a typed
    /// [`ServeError::Protocol`] — never a panic in a server worker.
    pub fn decode_binary(bytes: &[u8]) -> Result<Request, EaseError> {
        let mut r = Reader::new(bytes);
        let p = |e: ease_ml::PersistError| proto_err(format!("truncated request: {e}"));
        let version = r.take_u8().map_err(p)?;
        if version != PROTOCOL_VERSION {
            return Err(proto_err(format!(
                "protocol version skew: peer speaks v{version}, this build v{PROTOCOL_VERSION}"
            )));
        }
        let req = match r.take_u8().map_err(p)? {
            0 => Request::Ping,
            1 => Request::Recommend {
                graph: r.take_str().map_err(p)?,
                workload: r.take_str().map_err(p)?,
                k: r.take_opt_usize().map_err(p)?,
                goal: goal_from_tag(r.take_u8().map_err(p)?)?,
                top: r.take_usize().map_err(p)?,
                cwd: take_opt_str(&mut r).map_err(p)?,
            },
            2 => Request::Features {
                graph: r.take_str().map_err(p)?,
                tier: tier_from_tag(r.take_u8().map_err(p)?)?,
                cwd: take_opt_str(&mut r).map_err(p)?,
            },
            3 => Request::CacheStats,
            4 => Request::Shutdown,
            other => return Err(proto_err(format!("unknown request tag {other}"))),
        };
        if r.remaining() != 0 {
            return Err(proto_err(format!("{} trailing bytes after request", r.remaining())));
        }
        Ok(req)
    }

    /// Serialize to the JSON envelope the HTTP facade speaks: a
    /// `"type"`-discriminated object, e.g. `{"type":"ping"}`.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    pub(crate) fn to_json_value(&self) -> Value {
        match self {
            Request::Ping => Value::Obj(vec![("type".into(), Value::str("ping"))]),
            Request::Recommend { graph, workload, k, goal, top, cwd } => Value::Obj(vec![
                ("type".into(), Value::str("recommend")),
                ("graph".into(), Value::str(graph.clone())),
                ("workload".into(), Value::str(workload.clone())),
                ("k".into(), k.map_or(Value::Null, |k| Value::UInt(k as u64))),
                ("goal".into(), Value::str(goal_name(*goal))),
                ("top".into(), Value::UInt(*top as u64)),
                ("cwd".into(), cwd.clone().map_or(Value::Null, Value::Str)),
            ]),
            Request::Features { graph, tier, cwd } => Value::Obj(vec![
                ("type".into(), Value::str("features")),
                ("graph".into(), Value::str(graph.clone())),
                ("tier".into(), Value::str(tier_name(*tier))),
                ("cwd".into(), cwd.clone().map_or(Value::Null, Value::Str)),
            ]),
            Request::CacheStats => Value::Obj(vec![("type".into(), Value::str("cache-stats"))]),
            Request::Shutdown => Value::Obj(vec![("type".into(), Value::str("shutdown"))]),
        }
    }

    /// Deserialize the JSON envelope. Optional fields (`k`, `goal`, `top`,
    /// `cwd`, `tier`) may be omitted or `null` and take the same defaults
    /// the CLI flags take; malformations are typed
    /// [`ServeError::Protocol`] errors.
    pub fn from_json(src: &str) -> Result<Request, EaseError> {
        let v = json::parse(src).map_err(|e| proto_err(format!("bad JSON request: {e}")))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| proto_err("JSON request has no string `type` member"))?;
        match kind {
            "ping" => Ok(Request::Ping),
            "recommend" => Ok(Request::Recommend {
                graph: json_require_str(&v, "graph")?,
                workload: json_require_str(&v, "workload")?,
                k: json_opt_usize(&v, "k")?,
                goal: match json_opt_str(&v, "goal")? {
                    Some(name) => goal_from_name(&name)?,
                    None => OptGoal::EndToEnd,
                },
                top: json_opt_usize(&v, "top")?.unwrap_or(DEFAULT_TOP),
                cwd: json_opt_str(&v, "cwd")?,
            }),
            "features" => Ok(Request::Features {
                graph: json_require_str(&v, "graph")?,
                tier: match json_opt_str(&v, "tier")? {
                    Some(name) => tier_from_name(&name)?,
                    None => PropertyTier::Advanced,
                },
                cwd: json_opt_str(&v, "cwd")?,
            }),
            "cache-stats" => Ok(Request::CacheStats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(proto_err(format!("unknown JSON request type `{other}`"))),
        }
    }
}

impl Response {
    /// Serialize to the versioned binary payload.
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(PROTOCOL_VERSION);
        match self {
            Response::Pong { version } => {
                w.put_u8(0);
                w.put_u8(*version);
            }
            Response::Answer(text) => {
                w.put_u8(1);
                w.put_str(text);
            }
            Response::CacheStats(s) => {
                w.put_u8(2);
                w.put_u64(s.hits);
                w.put_u64(s.misses);
                w.put_u64(s.evictions);
                w.put_usize(s.len);
                w.put_usize(s.capacity);
                w.put_u64(s.requests_served);
                // v2 payload bump: budget observability rides after the
                // original fields, which are unchanged
                match s.memory_budget_remaining {
                    Some(remaining) => {
                        w.put_u8(1);
                        w.put_u64(remaining);
                    }
                    None => w.put_u8(0),
                }
                w.put_u64(s.spilled_csr_builds);
            }
            Response::Error(msg) => {
                w.put_u8(3);
                w.put_str(msg);
            }
            Response::ShuttingDown => w.put_u8(4),
            Response::Overloaded { needed, headroom } => {
                w.put_u8(5);
                w.put_u64(*needed);
                w.put_u64(*headroom);
            }
        }
        w.into_bytes()
    }

    /// Deserialize a binary response payload.
    pub fn decode_binary(bytes: &[u8]) -> Result<Response, EaseError> {
        let mut r = Reader::new(bytes);
        let p = |e: ease_ml::PersistError| proto_err(format!("truncated response: {e}"));
        let version = r.take_u8().map_err(p)?;
        if version != PROTOCOL_VERSION {
            return Err(proto_err(format!(
                "protocol version skew: peer speaks v{version}, this build v{PROTOCOL_VERSION}"
            )));
        }
        let resp = match r.take_u8().map_err(p)? {
            0 => Response::Pong { version: r.take_u8().map_err(p)? },
            1 => Response::Answer(r.take_str().map_err(p)?),
            2 => Response::CacheStats(ServeStats {
                hits: r.take_u64().map_err(p)?,
                misses: r.take_u64().map_err(p)?,
                evictions: r.take_u64().map_err(p)?,
                len: r.take_usize().map_err(p)?,
                capacity: r.take_usize().map_err(p)?,
                requests_served: r.take_u64().map_err(p)?,
                memory_budget_remaining: match r.take_u8().map_err(p)? {
                    0 => None,
                    1 => Some(r.take_u64().map_err(p)?),
                    other => return Err(proto_err(format!("unknown budget tag {other}"))),
                },
                spilled_csr_builds: r.take_u64().map_err(p)?,
            }),
            3 => Response::Error(r.take_str().map_err(p)?),
            4 => Response::ShuttingDown,
            5 => Response::Overloaded {
                needed: r.take_u64().map_err(p)?,
                headroom: r.take_u64().map_err(p)?,
            },
            other => return Err(proto_err(format!("unknown response tag {other}"))),
        };
        if r.remaining() != 0 {
            return Err(proto_err(format!("{} trailing bytes after response", r.remaining())));
        }
        Ok(resp)
    }

    /// Serialize to the JSON envelope, e.g. `{"type":"answer","answer":…}`.
    /// This is the body every HTTP response carries, so non-Rust clients
    /// see exactly the data binary clients decode — including the verbatim
    /// answer text, which stays bit-identical to the one-shot CLI.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    pub(crate) fn to_json_value(&self) -> Value {
        match self {
            Response::Pong { version } => Value::Obj(vec![
                ("type".into(), Value::str("pong")),
                ("version".into(), Value::UInt(u64::from(*version))),
            ]),
            Response::Answer(text) => Value::Obj(vec![
                ("type".into(), Value::str("answer")),
                ("answer".into(), Value::str(text.clone())),
            ]),
            Response::CacheStats(s) => Value::Obj(vec![
                ("type".into(), Value::str("stats")),
                ("hits".into(), Value::UInt(s.hits)),
                ("misses".into(), Value::UInt(s.misses)),
                ("evictions".into(), Value::UInt(s.evictions)),
                ("len".into(), Value::UInt(s.len as u64)),
                ("capacity".into(), Value::UInt(s.capacity as u64)),
                ("requests_served".into(), Value::UInt(s.requests_served)),
                (
                    "memory_budget_remaining".into(),
                    s.memory_budget_remaining.map_or(Value::Null, Value::UInt),
                ),
                ("spilled_csr_builds".into(), Value::UInt(s.spilled_csr_builds)),
            ]),
            Response::Error(msg) => Value::Obj(vec![
                ("type".into(), Value::str("error")),
                ("error".into(), Value::str(msg.clone())),
            ]),
            Response::ShuttingDown => {
                Value::Obj(vec![("type".into(), Value::str("shutting-down"))])
            }
            Response::Overloaded { needed, headroom } => Value::Obj(vec![
                ("type".into(), Value::str("overloaded")),
                ("needed".into(), Value::UInt(*needed)),
                ("headroom".into(), Value::UInt(*headroom)),
            ]),
        }
    }

    /// Deserialize the JSON envelope (the HTTP client path).
    pub fn from_json(src: &str) -> Result<Response, EaseError> {
        let v = json::parse(src).map_err(|e| proto_err(format!("bad JSON response: {e}")))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| proto_err("JSON response has no string `type` member"))?;
        match kind {
            "pong" => {
                let version = json_require_u64(&v, "version")?;
                let version = u8::try_from(version)
                    .map_err(|_| proto_err(format!("version {version} does not fit u8")))?;
                Ok(Response::Pong { version })
            }
            "answer" => Ok(Response::Answer(json_require_str(&v, "answer")?)),
            "stats" => Ok(Response::CacheStats(ServeStats {
                hits: json_require_u64(&v, "hits")?,
                misses: json_require_u64(&v, "misses")?,
                evictions: json_require_u64(&v, "evictions")?,
                len: json_require_usize(&v, "len")?,
                capacity: json_require_usize(&v, "capacity")?,
                requests_served: json_require_u64(&v, "requests_served")?,
                memory_budget_remaining: json_opt_u64(&v, "memory_budget_remaining")?,
                spilled_csr_builds: json_require_u64(&v, "spilled_csr_builds")?,
            })),
            "error" => Ok(Response::Error(json_require_str(&v, "error")?)),
            "shutting-down" => Ok(Response::ShuttingDown),
            "overloaded" => Ok(Response::Overloaded {
                needed: json_require_u64(&v, "needed")?,
                headroom: json_require_u64(&v, "headroom")?,
            }),
            other => Err(proto_err(format!("unknown JSON response type `{other}`"))),
        }
    }
}

/// Serialize a request payload — thin wrapper over
/// [`Request::encode_binary`], kept for the many existing call sites.
pub fn encode_request(req: &Request) -> Vec<u8> {
    req.encode_binary()
}

/// Deserialize a request payload — thin wrapper over
/// [`Request::decode_binary`].
pub fn decode_request(bytes: &[u8]) -> Result<Request, EaseError> {
    Request::decode_binary(bytes)
}

/// Serialize a response payload — thin wrapper over
/// [`Response::encode_binary`].
pub fn encode_response(resp: &Response) -> Vec<u8> {
    resp.encode_binary()
}

/// Deserialize a response payload — thin wrapper over
/// [`Response::decode_binary`].
pub fn decode_response(bytes: &[u8]) -> Result<Response, EaseError> {
    Response::decode_binary(bytes)
}

// -- JSON field plumbing (names ↔ enum values, required/optional members) --

/// The CLI spelling of a goal (`--goal` vocabulary), also the JSON one.
pub fn goal_name(goal: OptGoal) -> &'static str {
    match goal {
        OptGoal::EndToEnd => "e2e",
        OptGoal::ProcessingOnly => "processing",
    }
}

/// Parse the CLI/JSON goal vocabulary (`e2e`, `processing`, `proc`).
pub fn goal_from_name(name: &str) -> Result<OptGoal, EaseError> {
    match name {
        "e2e" => Ok(OptGoal::EndToEnd),
        "processing" | "proc" => Ok(OptGoal::ProcessingOnly),
        other => Err(proto_err(format!("unknown goal `{other}` (expected e2e|processing)"))),
    }
}

/// The CLI spelling of a property tier (`--tier` vocabulary).
pub fn tier_name(tier: PropertyTier) -> &'static str {
    match tier {
        PropertyTier::Simple => "simple",
        PropertyTier::Basic => "basic",
        PropertyTier::Advanced => "advanced",
    }
}

/// Parse the CLI/JSON tier vocabulary.
pub fn tier_from_name(name: &str) -> Result<PropertyTier, EaseError> {
    match name {
        "simple" => Ok(PropertyTier::Simple),
        "basic" => Ok(PropertyTier::Basic),
        "advanced" => Ok(PropertyTier::Advanced),
        other => Err(proto_err(format!("unknown tier `{other}` (expected simple|basic|advanced)"))),
    }
}

fn json_require_str(v: &Value, key: &str) -> Result<String, EaseError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| proto_err(format!("missing or non-string `{key}` member")))
}

fn json_require_u64(v: &Value, key: &str) -> Result<u64, EaseError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| proto_err(format!("missing or non-integer `{key}` member")))
}

fn json_require_usize(v: &Value, key: &str) -> Result<usize, EaseError> {
    let n = json_require_u64(v, key)?;
    usize::try_from(n).map_err(|_| proto_err(format!("`{key}` member {n} does not fit usize")))
}

/// Missing or `null` members read as `None`; a present member must be a
/// string.
fn json_opt_str(v: &Value, key: &str) -> Result<Option<String>, EaseError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(proto_err(format!("`{key}` member must be a string or null"))),
    }
}

fn json_opt_u64(v: &Value, key: &str) -> Result<Option<u64>, EaseError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::UInt(n)) => Ok(Some(*n)),
        Some(_) => Err(proto_err(format!("`{key}` member must be an unsigned integer or null"))),
    }
}

fn json_opt_usize(v: &Value, key: &str) -> Result<Option<usize>, EaseError> {
    match json_opt_u64(v, key)? {
        None => Ok(None),
        Some(n) => usize::try_from(n)
            .map(Some)
            .map_err(|_| proto_err(format!("`{key}` member {n} does not fit usize"))),
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one v1 `[magic][u32 LE len][payload]` frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), EaseError> {
    check_payload_len(payload)?;
    w.write_all(&FRAME_MAGIC)?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Write one v2 `[magic][u64 LE id][u32 LE len][payload]` frame.
pub fn write_frame_v2(w: &mut impl Write, id: u64, payload: &[u8]) -> Result<(), EaseError> {
    check_payload_len(payload)?;
    let mut head = [0u8; 14];
    head[..2].copy_from_slice(&FRAME_MAGIC_V2); // lint: panic-ok(const ranges of a fixed 14-byte header)
    head[2..10].copy_from_slice(&id.to_le_bytes()); // lint: panic-ok(const ranges of a fixed 14-byte header)
    head[10..14].copy_from_slice(&(payload.len() as u32).to_le_bytes()); // lint: panic-ok(const ranges of a fixed 14-byte header)
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

fn check_payload_len(payload: &[u8]) -> Result<(), EaseError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(proto_err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            payload.len()
        )));
    }
    Ok(())
}

/// Read one v1 frame, validating magic and the length cap. A peer that
/// closes before a complete frame is a typed [`ServeError::Disconnected`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, EaseError> {
    let mut magic = [0u8; 2];
    read_exact_framed(r, &mut magic)?;
    if magic != FRAME_MAGIC {
        return Err(bad_magic(magic, FRAME_MAGIC));
    }
    read_frame_after_magic(r)
}

/// Read the `[u32 LE len][payload]` remainder of a v1 frame whose magic
/// has already been consumed (the server sniffs the magic to dispatch
/// between the one-shot and pipelined connection loops).
pub fn read_frame_after_magic(r: &mut impl Read) -> Result<Vec<u8>, EaseError> {
    let mut len_bytes = [0u8; 4];
    read_exact_framed(r, &mut len_bytes)?;
    read_capped_payload(r, u32::from_le_bytes(len_bytes) as usize)
}

/// Read one v2 frame, validating magic and the length cap; returns the
/// request id alongside the payload.
pub fn read_frame_v2(r: &mut impl Read) -> Result<(u64, Vec<u8>), EaseError> {
    let mut magic = [0u8; 2];
    read_exact_framed(r, &mut magic)?;
    if magic != FRAME_MAGIC_V2 {
        return Err(bad_magic(magic, FRAME_MAGIC_V2));
    }
    read_frame_v2_after_magic(r)
}

/// Read the `[u64 LE id][u32 LE len][payload]` remainder of a v2 frame
/// whose magic has already been consumed.
pub fn read_frame_v2_after_magic(r: &mut impl Read) -> Result<(u64, Vec<u8>), EaseError> {
    let mut head = [0u8; 12];
    read_exact_framed(r, &mut head)?;
    // lint: panic-ok(const split of a fixed 12-byte header; try_into sees exactly 8 and 4 bytes)
    let id = u64::from_le_bytes(head[..8].try_into().expect("8-byte slice"));
    // lint: panic-ok(const split of a fixed 12-byte header; try_into sees exactly 8 and 4 bytes)
    let len = u32::from_le_bytes(head[8..12].try_into().expect("4-byte slice")) as usize;
    Ok((id, read_capped_payload(r, len)?))
}

fn bad_magic(got: [u8; 2], expected: [u8; 2]) -> EaseError {
    let ([g0, g1], [e0, e1]) = (got, expected);
    proto_err(format!("bad frame magic {g0:02x}{g1:02x} (expected {e0:02x}{e1:02x})"))
}

fn read_capped_payload(r: &mut impl Read, len: usize) -> Result<Vec<u8>, EaseError> {
    if len > MAX_FRAME_BYTES {
        return Err(proto_err(format!(
            "declared frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_framed(r, &mut payload)?;
    Ok(payload)
}

fn read_exact_framed(r: &mut impl Read, buf: &mut [u8]) -> Result<(), EaseError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::Disconnected.into()
        } else {
            EaseError::Io(e)
        }
    })
}

/// Unwrap an [`Response::Answer`], mapping a server-side
/// [`Response::Error`] to the typed [`ServeError::Remote`] (clients print
/// it exactly as the one-shot CLI prints the same failure).
pub fn expect_answer(response: Response) -> Result<String, EaseError> {
    match response {
        Response::Answer(text) => Ok(text),
        Response::Error(msg) => Err(ServeError::Remote(msg).into()),
        Response::Overloaded { needed, headroom } => {
            Err(ServeError::Overloaded { needed, headroom }.into())
        }
        other => Err(proto_err(format!("expected an answer, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
        // the JSON codec covers the same type, so parity is structural:
        // every variant the binary codec round-trips, JSON must too
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).unwrap(), resp);
        assert_eq!(Response::from_json(&resp.to_json()).unwrap(), resp);
    }

    #[test]
    fn request_codec_round_trips_every_variant() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Recommend {
            graph: "/tmp/graph.bel".into(),
            workload: "pr".into(),
            k: Some(8),
            goal: OptGoal::ProcessingOnly,
            top: 11,
            cwd: None,
        });
        round_trip_request(Request::Recommend {
            graph: "rel/path with spaces.txt".into(),
            workload: "cc".into(),
            k: None,
            goal: OptGoal::EndToEnd,
            top: DEFAULT_TOP,
            cwd: Some("/home/someone".into()),
        });
        round_trip_request(Request::Features {
            graph: "g.txt".into(),
            tier: PropertyTier::Basic,
            cwd: Some("/srv".into()),
        });
        round_trip_request(Request::CacheStats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn graph_paths_resolve_against_the_client_cwd() {
        // relative path + client cwd: the daemon must answer for the
        // client's file, wherever the daemon itself was started
        assert_eq!(resolve_graph_path("data.txt", Some("/home/u")), Path::new("/home/u/data.txt"));
        assert_eq!(resolve_graph_path("a/b.bel", Some("/srv")), Path::new("/srv/a/b.bel"));
        // absolute paths ignore the cwd; a missing cwd resolves as-is
        assert_eq!(resolve_graph_path("/abs/g.txt", Some("/srv")), Path::new("/abs/g.txt"));
        assert_eq!(resolve_graph_path("rel.txt", None), Path::new("rel.txt"));
    }

    #[test]
    fn response_codec_round_trips_every_variant() {
        round_trip_response(Response::Pong { version: PROTOCOL_VERSION });
        round_trip_response(Response::Answer("two\nlines\n".into()));
        round_trip_response(Response::CacheStats(ServeStats {
            hits: 10,
            misses: 3,
            evictions: 1,
            len: 2,
            capacity: 64,
            requests_served: 14,
            memory_budget_remaining: None,
            spilled_csr_builds: 0,
        }));
        round_trip_response(Response::CacheStats(ServeStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            len: 0,
            capacity: 0,
            requests_served: 1,
            memory_budget_remaining: Some(64 << 20),
            spilled_csr_builds: 7,
        }));
        round_trip_response(Response::Error("no model trained for workload `x`".into()));
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Overloaded { needed: 1 << 30, headroom: 4 << 20 });
    }

    #[test]
    fn malformed_payloads_are_typed_protocol_errors() {
        let is_protocol = |e: EaseError| {
            assert!(
                matches!(e, EaseError::Serve(ServeError::Protocol(_))),
                "expected a protocol error, got {e:?}"
            );
        };
        // empty, version skew, unknown tag, truncation, trailing bytes
        is_protocol(decode_request(&[]).unwrap_err());
        is_protocol(decode_request(&[PROTOCOL_VERSION + 1, 0]).unwrap_err());
        is_protocol(decode_request(&[PROTOCOL_VERSION, 99]).unwrap_err());
        let mut truncated = encode_request(&Request::Features {
            graph: "abcdef.txt".into(),
            tier: PropertyTier::Advanced,
            cwd: None,
        });
        truncated.truncate(truncated.len() - 3);
        is_protocol(decode_request(&truncated).unwrap_err());
        let mut trailing = encode_request(&Request::Ping);
        trailing.push(0);
        is_protocol(decode_request(&trailing).unwrap_err());
        is_protocol(decode_response(&[PROTOCOL_VERSION, 77]).unwrap_err());
    }

    #[test]
    fn frames_round_trip_and_reject_garbage() {
        let payload = encode_request(&Request::CacheStats);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(&wire[..2], &FRAME_MAGIC);
        let back = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, payload);
        // wrong magic
        let mut bad = wire.clone();
        bad[0] = b'G';
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Protocol(_))
        ));
        // a length prefix past the cap must be refused before allocation
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&FRAME_MAGIC);
        oversized.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut oversized.as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Protocol(_))
        ));
        // peer vanishing mid-frame is Disconnected, not a parse panic
        assert!(matches!(
            read_frame(&mut wire[..3].to_vec().as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Disconnected)
        ));
        // writers refuse to emit an oversized frame
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
        assert!(write_frame_v2(&mut Vec::new(), 1, &huge).is_err());
    }

    #[test]
    fn v2_frames_carry_request_ids_and_reject_garbage() {
        let payload = encode_request(&Request::Ping);
        for id in [0u64, 1, 42, u64::MAX] {
            let mut wire = Vec::new();
            write_frame_v2(&mut wire, id, &payload).unwrap();
            assert_eq!(&wire[..2], &FRAME_MAGIC_V2);
            let (back_id, back) = read_frame_v2(&mut wire.as_slice()).unwrap();
            assert_eq!(back_id, id);
            assert_eq!(back, payload);
        }
        // v1 magic fed to the v2 reader (and vice versa) is a typed error,
        // not a misparse: the id bytes would otherwise be read as a length
        let mut v1 = Vec::new();
        write_frame(&mut v1, &payload).unwrap();
        assert!(matches!(
            read_frame_v2(&mut v1.as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Protocol(_))
        ));
        let mut v2 = Vec::new();
        write_frame_v2(&mut v2, 7, &payload).unwrap();
        assert!(matches!(
            read_frame(&mut v2.as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Protocol(_))
        ));
        // oversized declared length refused before allocation
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&FRAME_MAGIC_V2);
        oversized.extend_from_slice(&9u64.to_le_bytes());
        oversized.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame_v2(&mut oversized.as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Protocol(_))
        ));
        // truncation mid-header is Disconnected
        assert!(matches!(
            read_frame_v2(&mut v2[..7].to_vec().as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Disconnected)
        ));
    }

    #[test]
    fn json_requests_default_like_the_cli() {
        // omitted k/goal/top/cwd take the CLI defaults
        let req =
            Request::from_json(r#"{"type":"recommend","graph":"g.txt","workload":"pr"}"#).unwrap();
        assert_eq!(
            req,
            Request::Recommend {
                graph: "g.txt".into(),
                workload: "pr".into(),
                k: None,
                goal: OptGoal::EndToEnd,
                top: DEFAULT_TOP,
                cwd: None,
            }
        );
        let req = Request::from_json(r#"{"type":"features","graph":"g.bel"}"#).unwrap();
        assert_eq!(
            req,
            Request::Features { graph: "g.bel".into(), tier: PropertyTier::Advanced, cwd: None }
        );
    }

    #[test]
    fn malformed_json_payloads_are_typed_protocol_errors() {
        let is_protocol = |e: EaseError| {
            assert!(
                matches!(e, EaseError::Serve(ServeError::Protocol(_))),
                "expected a protocol error, got {e:?}"
            );
        };
        is_protocol(Request::from_json("").unwrap_err());
        is_protocol(Request::from_json("[]").unwrap_err());
        is_protocol(Request::from_json(r#"{"type":"warp"}"#).unwrap_err());
        is_protocol(Request::from_json(r#"{"type":"recommend"}"#).unwrap_err());
        is_protocol(
            Request::from_json(r#"{"type":"recommend","graph":"g","workload":"pr","k":-1}"#)
                .unwrap_err(),
        );
        is_protocol(
            Request::from_json(r#"{"type":"recommend","graph":"g","workload":"pr","goal":"x"}"#)
                .unwrap_err(),
        );
        is_protocol(Response::from_json(r#"{"type":"pong"}"#).unwrap_err());
        is_protocol(Response::from_json(r#"{"type":"stats","hits":1}"#).unwrap_err());
        is_protocol(Response::from_json("{not json").unwrap_err());
    }

    #[test]
    fn goal_and_tier_names_round_trip_the_cli_vocabulary() {
        for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
            assert_eq!(goal_from_name(goal_name(goal)).unwrap(), goal);
        }
        assert_eq!(goal_from_name("proc").unwrap(), OptGoal::ProcessingOnly);
        assert!(goal_from_name("fastest").is_err());
        for tier in [PropertyTier::Simple, PropertyTier::Basic, PropertyTier::Advanced] {
            assert_eq!(tier_from_name(tier_name(tier)).unwrap(), tier);
        }
        assert!(tier_from_name("ultra").is_err());
    }

    #[test]
    fn expect_answer_maps_remote_errors() {
        assert_eq!(expect_answer(Response::Answer("ok".into())).unwrap(), "ok");
        match expect_answer(Response::Error("boom".into())).unwrap_err() {
            EaseError::Serve(ServeError::Remote(msg)) => assert_eq!(msg, "boom"),
            other => panic!("expected Remote, got {other:?}"),
        }
        match expect_answer(Response::Overloaded { needed: 100, headroom: 7 }).unwrap_err() {
            EaseError::Serve(ServeError::Overloaded { needed, headroom }) => {
                assert_eq!((needed, headroom), (100, 7));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(expect_answer(Response::ShuttingDown).is_err());
    }

    fn stats(requests_served: u64) -> ServeStats {
        ServeStats {
            hits: 5,
            misses: 2,
            evictions: 0,
            len: 2,
            capacity: 64,
            requests_served,
            memory_budget_remaining: None,
            spilled_csr_builds: 0,
        }
    }

    #[test]
    fn stats_render_is_stable() {
        let s = stats(9);
        let text = s.render();
        assert!(text.contains("hits=5 misses=2 evictions=0 len=2/64"));
        assert!(text.contains("memory budget: none (spilled CSR builds: 0)"));
        assert!(text.contains("requests served: 9"));
        let budgeted =
            ServeStats { memory_budget_remaining: Some(1234), spilled_csr_builds: 3, ..s };
        assert!(budgeted.render().contains("memory budget: 1234 bytes remaining"));
        assert!(budgeted.render().contains("(spilled CSR builds: 3)"));
        let unlimited = ServeStats { memory_budget_remaining: Some(u64::MAX), ..s };
        assert!(unlimited.render().contains("memory budget: unlimited"));
    }

    #[test]
    fn absorb_folds_a_fleet_of_snapshots() {
        // counters sum; a budget-less fleet stays budget-less
        let mut fleet = stats(9);
        fleet.absorb(&stats(1));
        assert_eq!(fleet.requests_served, 10);
        assert_eq!(fleet.hits, 10);
        assert_eq!(fleet.capacity, 128);
        assert_eq!(fleet.memory_budget_remaining, None);
        // one budgeted backend gives the fleet its headroom verbatim
        let budgeted =
            ServeStats { memory_budget_remaining: Some(500), spilled_csr_builds: 2, ..stats(1) };
        fleet.absorb(&budgeted);
        assert_eq!(fleet.memory_budget_remaining, Some(500));
        assert_eq!(fleet.spilled_csr_builds, 2);
        // budgets sum across backends, saturating at u64::MAX for an
        // unlimited member rather than wrapping
        fleet.absorb(&ServeStats { memory_budget_remaining: Some(250), ..stats(0) });
        assert_eq!(fleet.memory_budget_remaining, Some(750));
        fleet.absorb(&ServeStats { memory_budget_remaining: Some(u64::MAX), ..stats(0) });
        assert_eq!(fleet.memory_budget_remaining, Some(u64::MAX));
    }
}
