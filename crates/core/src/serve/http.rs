//! The HTTP/1.1 + JSON facade on the serve stack — no new listener, no
//! new dependencies: the per-connection magic sniffer in `server.rs`
//! recognises the first two bytes of `GET ` / `POST` ([`SNIFF_GET`],
//! [`SNIFF_POST`]) and hands the connection to this module's loop, which
//! runs on the same connection workers and submits decoded [`Request`]s
//! to the same executor pool and `Handler` as the binary protocols. The
//! facade therefore works identically against a single daemon and the
//! consistent-hash router fleet, and `curl` answers stay bit-identical to
//! the one-shot CLI (modulo the JSON envelope).
//!
//! Endpoints:
//!
//! | method + path     | request                         |
//! |-------------------|---------------------------------|
//! | `GET /recommend`  | [`Request::Recommend`] from `?graph=…&workload=…&k=…&goal=…&top=…&cwd=…` |
//! | `GET /features`   | [`Request::Features`] from `?graph=…&tier=…&cwd=…` |
//! | `GET /stats`      | [`Request::CacheStats`] (fleet-folded through the router) |
//! | `GET /healthz`    | [`Request::Ping`]               |
//! | `POST /shutdown`  | [`Request::Shutdown`]           |
//! | `POST /rpc`       | any [`Request`] as a JSON body (the `--endpoint http:` client path) |
//!
//! Every response body is the [`Response`]'s JSON envelope
//! ([`Response::to_json`]); the status code classifies it — `503` for
//! [`Response::Overloaded`], `404` for I/O failures (the graph path did
//! not open), `400` for every other error. Alongside `http.rs`, only
//! `json.rs` formats JSON text.

use super::protocol::{
    goal_from_name, proto_err, tier_from_name, Request, Response, DEFAULT_TOP, MAX_FRAME_BYTES,
};
use crate::error::EaseError;
use crate::selector::OptGoal;
use ease_graph::PropertyTier;
use std::io::{Read, Write};

/// First two bytes of `GET ` — the connection sniffer in `server.rs`
/// dispatches on these exactly as it does on the binary frame magics.
pub const SNIFF_GET: [u8; 2] = [b'G', b'E'];

/// First two bytes of `POST`.
pub const SNIFF_POST: [u8; 2] = [b'P', b'O'];

/// Cap on one request head (request line + headers). 8 KiB holds any
/// reasonable query string; past it the peer is rejected before the
/// worker buffers more, mirroring [`MAX_FRAME_BYTES`] for frames.
pub const MAX_HEAD_BYTES: usize = 8 << 10;

/// What the connection loop in `server.rs` should do after one request.
pub(crate) enum SessionState {
    /// The peer may send another request on this connection.
    KeepAlive,
    /// Close: the peer asked for it, the request was malformed beyond
    /// resynchronisation, or the daemon is shutting down.
    Close,
}

/// Serve exactly one HTTP request on `stream`. The two sniffed bytes
/// arrive via `prefix` (they are part of the request line). `submit` runs
/// the decoded request through the server's executor pool and returns its
/// typed response — or `None` when the daemon is draining, which closes
/// the connection without an answer.
///
/// Malformed or oversized heads get a best-effort `400` and close the
/// connection; nothing in here can panic the worker on peer input.
pub(crate) fn serve_one(
    stream: &mut (impl Read + Write),
    prefix: [u8; 2],
    submit: &mut dyn FnMut(Request) -> Option<Response>,
) -> SessionState {
    let head_bytes = match read_head(stream, prefix) {
        Ok(bytes) => bytes,
        Err(ReadHeadError::TooLarge) => {
            let body = Response::Error(format!(
                "serve error: protocol violation: HTTP request head exceeds \
                 the {MAX_HEAD_BYTES}-byte cap"
            ));
            respond(stream, 400, "Bad Request", &body.to_json(), true).ok();
            return SessionState::Close;
        }
        // peer vanished mid-head: nothing to answer
        Err(ReadHeadError::Io) => return SessionState::Close,
    };
    let Ok(head) = std::str::from_utf8(&head_bytes) else {
        let body = Response::Error(
            "serve error: protocol violation: HTTP request head is not UTF-8".into(),
        );
        respond(stream, 400, "Bad Request", &body.to_json(), true).ok();
        return SessionState::Close;
    };
    let parsed = match parse_head(head) {
        Ok(parsed) => parsed,
        Err(message) => {
            let body = Response::Error(format!("serve error: protocol violation: {message}"));
            respond(stream, 400, "Bad Request", &body.to_json(), true).ok();
            return SessionState::Close;
        }
    };
    let body = match parsed.content_length {
        0 => None,
        len if len > MAX_FRAME_BYTES => {
            let body = Response::Error(format!(
                "serve error: protocol violation: declared body of {len} bytes \
                 exceeds the {MAX_FRAME_BYTES}-byte cap"
            ));
            respond(stream, 400, "Bad Request", &body.to_json(), true).ok();
            return SessionState::Close;
        }
        len => {
            let mut buf = vec![0u8; len];
            if stream.read_exact(&mut buf).is_err() {
                return SessionState::Close;
            }
            match String::from_utf8(buf) {
                Ok(text) => Some(text),
                Err(_) => {
                    let body = Response::Error(
                        "serve error: protocol violation: HTTP body is not UTF-8".into(),
                    );
                    respond(stream, 400, "Bad Request", &body.to_json(), true).ok();
                    return SessionState::Close;
                }
            }
        }
    };
    let close = !parsed.keep_alive;
    let next = |ok: bool| if ok && !close { SessionState::KeepAlive } else { SessionState::Close };
    match request_for(&parsed.method, &parsed.target, body.as_deref()) {
        Ok(request) => {
            // the executor pool is gone only while draining for shutdown
            let Some(response) = submit(request) else { return SessionState::Close };
            let (status, reason) = status_for(&response);
            let done = close || matches!(response, Response::ShuttingDown);
            let ok = respond(stream, status, reason, &response.to_json(), done).is_ok();
            next(ok && !done)
        }
        Err((status, reason, message)) => {
            // a routing error on a well-formed request is answerable and
            // the connection stays usable
            let ok =
                respond(stream, status, reason, &Response::Error(message).to_json(), close).is_ok();
            next(ok)
        }
    }
}

/// The HTTP status a [`Response`] travels under: `503` when a fleet shed
/// the query, `404` when the graph path failed to open, `400` for every
/// other error, `200` otherwise.
pub fn status_for(response: &Response) -> (u16, &'static str) {
    match response {
        Response::Overloaded { .. } => (503, "Service Unavailable"),
        Response::Error(msg) if msg.contains("I/O error:") => (404, "Not Found"),
        Response::Error(_) => (400, "Bad Request"),
        _ => (200, "OK"),
    }
}

enum ReadHeadError {
    TooLarge,
    Io,
}

/// Read up to the `\r\n\r\n` head terminator, one byte at a time so the
/// loop never consumes bytes belonging to the body or to a pipelined
/// follow-up request. Heads are ≤ [`MAX_HEAD_BYTES`]; throughput is not
/// what this path is for.
fn read_head(stream: &mut impl Read, prefix: [u8; 2]) -> Result<Vec<u8>, ReadHeadError> {
    let mut head = prefix.to_vec();
    let mut byte = [0u8; 1];
    loop {
        if head.len() >= MAX_HEAD_BYTES {
            drain_oversized_head(stream);
            return Err(ReadHeadError::TooLarge);
        }
        if stream.read_exact(&mut byte).is_err() {
            return Err(ReadHeadError::Io);
        }
        let [b] = byte;
        head.push(b);
        if head.ends_with(b"\r\n\r\n") {
            return Ok(head);
        }
    }
}

/// Discard the tail of a head we refused to buffer. Closing a socket
/// with unread input makes the kernel answer with RST, which can destroy
/// the 400 response before the peer reads it — so consume up to a hard
/// cap looking for the terminator, then give up on pathological peers.
fn drain_oversized_head(stream: &mut impl Read) {
    let mut tail = [0u8; 4];
    let mut chunk = [0u8; 256];
    let mut budget = MAX_HEAD_BYTES * 4;
    while budget > 0 {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        budget = budget.saturating_sub(n);
        // lint: panic-ok(read returns n <= chunk.len())
        for &b in &chunk[..n] {
            tail.rotate_left(1);
            tail[3] = b; // lint: panic-ok(fixed 4-byte window)
        }
        if tail == *b"\r\n\r\n" {
            return;
        }
    }
}

struct ParsedHead {
    method: String,
    target: String,
    content_length: usize,
    keep_alive: bool,
}

fn parse_head(head: &str) -> Result<ParsedHead, String> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().ok_or_else(|| format!("bad HTTP request line `{request_line}`"))?;
    let version = parts.next().ok_or_else(|| format!("bad HTTP request line `{request_line}`"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(format!("bad HTTP request line `{request_line}`"));
    }
    // HTTP/1.0 defaults to close, HTTP/1.1 to keep-alive
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((key, value)) = line.split_once(':') else {
            return Err(format!("bad HTTP header line `{line}`"));
        };
        let value = value.trim();
        if key.eq_ignore_ascii_case("content-length") {
            content_length =
                value.parse::<usize>().map_err(|_| format!("bad Content-Length `{value}`"))?;
        } else if key.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    Ok(ParsedHead {
        method: method.to_string(),
        target: target.to_string(),
        content_length,
        keep_alive,
    })
}

type RouteError = (u16, &'static str, String);

/// Map a parsed request line onto a typed [`Request`]. Routing failures
/// carry the status they should travel under: `404` for unknown paths,
/// `405` for a known path with the wrong method, `400` for bad queries.
fn request_for(method: &str, target: &str, body: Option<&str>) -> Result<Request, RouteError> {
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let bad = |message: String| -> RouteError { (400, "Bad Request", message) };
    match (method, path) {
        ("GET", "/healthz") => Ok(Request::Ping),
        ("GET", "/stats") => Ok(Request::CacheStats),
        ("GET", "/recommend") => {
            let pairs = parse_query(query).map_err(|e| bad(e.to_string()))?;
            Ok(Request::Recommend {
                graph: require_param(&pairs, "graph")?,
                workload: require_param(&pairs, "workload")?,
                k: optional_num(&pairs, "k")?,
                goal: match find_param(&pairs, "goal") {
                    Some(name) => goal_from_name(name).map_err(|e| bad(e.to_string()))?,
                    None => OptGoal::EndToEnd,
                },
                top: optional_num(&pairs, "top")?.unwrap_or(DEFAULT_TOP),
                cwd: find_param(&pairs, "cwd").map(str::to_string),
            })
        }
        ("GET", "/features") => {
            let pairs = parse_query(query).map_err(|e| bad(e.to_string()))?;
            Ok(Request::Features {
                graph: require_param(&pairs, "graph")?,
                tier: match find_param(&pairs, "tier") {
                    Some(name) => tier_from_name(name).map_err(|e| bad(e.to_string()))?,
                    None => PropertyTier::Advanced,
                },
                cwd: find_param(&pairs, "cwd").map(str::to_string),
            })
        }
        ("POST", "/shutdown") => Ok(Request::Shutdown),
        ("POST", "/rpc") => {
            Request::from_json(body.unwrap_or_default()).map_err(|e| bad(e.to_string()))
        }
        (_, "/healthz" | "/stats" | "/recommend" | "/features" | "/shutdown" | "/rpc") => {
            Err((405, "Method Not Allowed", format!("method {method} is not allowed on {path}")))
        }
        _ => Err((404, "Not Found", format!("no such endpoint `{path}`"))),
    }
}

/// Split and percent-decode a query string into key/value pairs. `+` is
/// *not* decoded to a space — graph paths legitimately contain `+`, and
/// curl does not form-encode query strings.
fn parse_query(query: &str) -> Result<Vec<(String, String)>, EaseError> {
    let mut pairs = Vec::new();
    for part in query.split('&') {
        if part.is_empty() {
            continue;
        }
        let (key, value) = part.split_once('=').unwrap_or((part, ""));
        pairs.push((percent_decode(key)?, percent_decode(value)?));
    }
    Ok(pairs)
}

fn find_param<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn require_param(pairs: &[(String, String)], key: &str) -> Result<String, RouteError> {
    find_param(pairs, key)
        .map(str::to_string)
        .ok_or_else(|| (400, "Bad Request", format!("missing query parameter `{key}`")))
}

fn optional_num(pairs: &[(String, String)], key: &str) -> Result<Option<usize>, RouteError> {
    match find_param(pairs, key) {
        None => Ok(None),
        Some(raw) => raw.parse::<usize>().map(Some).map_err(|_| {
            (400, "Bad Request", format!("query parameter `{key}` must be a number, got `{raw}`"))
        }),
    }
}

fn percent_decode(s: &str) -> Result<String, EaseError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b == b'%' {
            match (bytes.get(i + 1).and_then(hex_val), bytes.get(i + 2).and_then(hex_val)) {
                (Some(hi), Some(lo)) => {
                    out.push((hi << 4) | lo);
                    i += 3;
                }
                _ => return Err(proto_err(format!("bad percent-escape in `{s}`"))),
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| proto_err(format!("percent-escapes in `{s}` are not UTF-8")))
}

fn hex_val(b: &u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Write one HTTP/1.1 response carrying a JSON body.
fn respond(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One request/response exchange with an HTTP endpoint — the transport
/// behind `--endpoint http:<addr>`: POST the request's JSON envelope to
/// `/rpc`, decode the JSON envelope that comes back. Every [`Request`]
/// kind works, so `ease client` keeps its full vocabulary over HTTP.
pub fn call_http(addr: &str, request: &Request) -> Result<Response, EaseError> {
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(super::DEFAULT_IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(super::DEFAULT_IO_TIMEOUT)).ok();
    call_http_on(stream, addr, request)
}

/// [`call_http`] over an already-connected stream (tests drive it with
/// an in-memory pair).
fn call_http_on(
    mut stream: impl Read + Write,
    host: &str,
    request: &Request,
) -> Result<Response, EaseError> {
    let body = request.to_json();
    let head = format!(
        "POST /rpc HTTP/1.1\r\n\
         Host: {host}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    // `Connection: close` means the whole response is ours to drain
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let terminator = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| proto_err("HTTP response without a blank line after the headers"))?;
    let body = raw.get(terminator + 4..).unwrap_or_default();
    let text =
        std::str::from_utf8(body).map_err(|_| proto_err("HTTP response body is not UTF-8"))?;
    Response::from_json(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory duplex stream: reads drain `input`, writes land in
    /// `output`.
    struct FakeStream {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl FakeStream {
        fn new(input: &[u8]) -> FakeStream {
            FakeStream { input: std::io::Cursor::new(input.to_vec()), output: Vec::new() }
        }

        fn wrote(&self) -> &str {
            std::str::from_utf8(&self.output).unwrap()
        }
    }

    impl Read for FakeStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for FakeStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Drive [`serve_one`] the way `server.rs` does: the first two bytes
    /// are pre-sniffed off the wire.
    fn drive(raw: &str, answer: Response) -> (String, Vec<Request>) {
        let bytes = raw.as_bytes();
        let prefix = [bytes[0], bytes[1]];
        let mut stream = FakeStream::new(&bytes[2..]);
        let mut seen = Vec::new();
        serve_one(&mut stream, prefix, &mut |request| {
            seen.push(request);
            Some(answer.clone())
        });
        (stream.wrote().to_string(), seen)
    }

    #[test]
    fn healthz_maps_to_ping() {
        let (wire, seen) =
            drive("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", Response::Pong { version: 2 });
        assert_eq!(seen, vec![Request::Ping]);
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"), "got: {wire}");
        assert!(wire.contains("Content-Type: application/json"));
        assert!(wire.ends_with(r#"{"type":"pong","version":2}"#), "got: {wire}");
    }

    #[test]
    fn recommend_query_parses_every_parameter() {
        let (_, seen) = drive(
            "GET /recommend?graph=%2Fdata%2Fa%2Bb.bel&workload=pr&k=8&goal=processing\
             &top=3&cwd=%2Fsrv HTTP/1.1\r\n\r\n",
            Response::Answer("ok".into()),
        );
        assert_eq!(
            seen,
            vec![Request::Recommend {
                graph: "/data/a+b.bel".into(),
                workload: "pr".into(),
                k: Some(8),
                goal: OptGoal::ProcessingOnly,
                top: 3,
                cwd: Some("/srv".into()),
            }]
        );
    }

    #[test]
    fn recommend_defaults_match_the_cli() {
        let (_, seen) = drive(
            "GET /recommend?graph=g.txt&workload=cc HTTP/1.1\r\n\r\n",
            Response::Answer("ok".into()),
        );
        assert_eq!(
            seen,
            vec![Request::Recommend {
                graph: "g.txt".into(),
                workload: "cc".into(),
                k: None,
                goal: OptGoal::EndToEnd,
                top: DEFAULT_TOP,
                cwd: None,
            }]
        );
    }

    #[test]
    fn features_and_stats_and_shutdown_route() {
        let (_, seen) = drive(
            "GET /features?graph=g.bel&tier=basic HTTP/1.1\r\n\r\n",
            Response::Answer("ok".into()),
        );
        assert_eq!(
            seen,
            vec![Request::Features { graph: "g.bel".into(), tier: PropertyTier::Basic, cwd: None }]
        );
        let (_, seen) = drive("GET /stats HTTP/1.1\r\n\r\n", Response::Answer("ok".into()));
        assert_eq!(seen, vec![Request::CacheStats]);
        let (wire, seen) = drive("POST /shutdown HTTP/1.1\r\n\r\n", Response::ShuttingDown);
        assert_eq!(seen, vec![Request::Shutdown]);
        assert!(wire.contains("Connection: close"), "shutdown must close: {wire}");
    }

    #[test]
    fn rpc_post_carries_any_request_as_json() {
        let body = Request::CacheStats.to_json();
        let raw = format!("POST /rpc HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
        let (_, seen) = drive(&raw, Response::Answer("ok".into()));
        assert_eq!(seen, vec![Request::CacheStats]);
    }

    #[test]
    fn routing_failures_carry_typed_statuses() {
        // unknown path → 404, bad method → 405, bad query → 400; all keep
        // the worker alive and never reach the handler
        let (wire, seen) = drive("GET /nope HTTP/1.1\r\n\r\n", Response::Answer("x".into()));
        assert!(seen.is_empty());
        assert!(wire.starts_with("HTTP/1.1 404 Not Found\r\n"), "got: {wire}");
        let (wire, seen) = drive("GET /shutdown HTTP/1.1\r\n\r\n", Response::Answer("x".into()));
        assert!(seen.is_empty());
        assert!(wire.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"), "got: {wire}");
        let (wire, seen) =
            drive("GET /recommend?workload=pr HTTP/1.1\r\n\r\n", Response::Answer("x".into()));
        assert!(seen.is_empty());
        assert!(wire.starts_with("HTTP/1.1 400 Bad Request\r\n"), "got: {wire}");
        assert!(wire.contains("missing query parameter"), "got: {wire}");
        let (wire, _) = drive(
            "GET /recommend?graph=g&workload=pr&k=many HTTP/1.1\r\n\r\n",
            Response::Answer("x".into()),
        );
        assert!(wire.starts_with("HTTP/1.1 400 Bad Request\r\n"), "got: {wire}");
    }

    #[test]
    fn statuses_classify_responses() {
        assert_eq!(status_for(&Response::Answer("x".into())).0, 200);
        assert_eq!(status_for(&Response::Pong { version: 2 }).0, 200);
        assert_eq!(status_for(&Response::ShuttingDown).0, 200);
        assert_eq!(status_for(&Response::Overloaded { needed: 9, headroom: 1 }).0, 503);
        assert_eq!(status_for(&Response::Error("I/O error: no such file".into())).0, 404);
        assert_eq!(status_for(&Response::Error("unknown workload `x`".into())).0, 400);
    }

    #[test]
    fn malformed_heads_are_rejected_not_panicked() {
        for raw in [
            "GEX\r\n\r\n",
            "GET /healthz\r\n\r\n",
            "GET /healthz HTTP/2 extra\r\n\r\n",
            "GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n",
            "POST /rpc HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let bytes = raw.as_bytes();
            let mut stream = FakeStream::new(&bytes[2..]);
            let state = serve_one(&mut stream, [bytes[0], bytes[1]], &mut |_| {
                panic!("malformed request must not reach the executor")
            });
            assert!(matches!(state, SessionState::Close));
            assert!(stream.wrote().starts_with("HTTP/1.1 400"), "got: {}", stream.wrote());
        }
    }

    #[test]
    fn oversized_heads_are_rejected_before_buffering() {
        let raw = format!("GET /x?pad={} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        let bytes = raw.as_bytes();
        let mut stream = FakeStream::new(&bytes[2..]);
        let state = serve_one(&mut stream, [bytes[0], bytes[1]], &mut |_| unreachable!());
        assert!(matches!(state, SessionState::Close));
        assert!(stream.wrote().starts_with("HTTP/1.1 400"));
        assert!(stream.wrote().contains("head exceeds"));
    }

    #[test]
    fn keep_alive_follows_the_version_and_header() {
        let (wire, _) = drive("GET /healthz HTTP/1.1\r\n\r\n", Response::Pong { version: 2 });
        assert!(wire.contains("Connection: keep-alive"), "got: {wire}");
        let (wire, _) = drive("GET /healthz HTTP/1.0\r\n\r\n", Response::Pong { version: 2 });
        assert!(wire.contains("Connection: close"), "got: {wire}");
        let (wire, _) = drive(
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            Response::Pong { version: 2 },
        );
        assert!(wire.contains("Connection: close"), "got: {wire}");
    }

    #[test]
    fn percent_decoding_round_trips_paths() {
        assert_eq!(percent_decode("a%20b").unwrap(), "a b");
        assert_eq!(percent_decode("%2Fdata%2Fg.bel").unwrap(), "/data/g.bel");
        assert_eq!(percent_decode("plus+stays").unwrap(), "plus+stays");
        assert_eq!(percent_decode("caf%C3%A9").unwrap(), "café");
        assert!(percent_decode("bad%2").is_err());
        assert!(percent_decode("bad%zz").is_err());
        assert!(percent_decode("%ff").is_err()); // lone continuation byte
    }

    #[test]
    fn http_client_round_trips_against_serve_one() {
        // drive the client's request bytes through the server loop and
        // its response bytes back through the client parser
        let request = Request::Recommend {
            graph: "g.txt".into(),
            workload: "pr".into(),
            k: Some(4),
            goal: OptGoal::EndToEnd,
            top: 2,
            cwd: Some("/srv".into()),
        };
        let mut client_out = FakeStream::new(&[]);
        // capture what the client would send (read_to_end sees EOF at once,
        // so the parse below fails; we only want the bytes)
        call_http_on(&mut client_out, "test", &request).unwrap_err();
        let wire = client_out.output.clone();
        let (prefix, rest) = (&wire[..2], &wire[2..]);
        let mut server = FakeStream::new(rest);
        let answer = Response::Answer("the answer\n".into());
        let reply = answer.clone();
        serve_one(&mut server, [prefix[0], prefix[1]], &mut |req| {
            assert_eq!(req, request);
            Some(reply.clone())
        });
        // now feed the server's bytes back through the client parser
        let mut client_in = FakeStream::new(&server.output);
        let got = call_http_on(&mut client_in, "test", &Request::Ping);
        // the client wrote a fresh request into the void and parsed the
        // canned response; only the parse matters here
        assert_eq!(got.unwrap(), answer);
    }
}
