//! PartitionerSelector — combine the three predictors into an automatic
//! choice (paper Fig. 4), plus the baseline selection strategies the
//! evaluation compares against (Sec. V-F).

use crate::error::EaseError;
use crate::predictors::{PartitioningTimePredictor, ProcessingTimePredictor, QualityPredictor};
use ease_graph::GraphProperties;
use ease_partition::{PartitionerId, QualityMetrics};
use ease_procsim::Workload;

/// What the selection minimizes (paper: end-to-end = partitioning +
/// processing; processing-only for offline-partitioning scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptGoal {
    EndToEnd,
    ProcessingOnly,
}

impl OptGoal {
    pub fn name(self) -> &'static str {
        match self {
            OptGoal::EndToEnd => "E2E",
            OptGoal::ProcessingOnly => "Pro.",
        }
    }
}

/// Predicted costs of one candidate partitioner.
#[derive(Debug, Clone)]
pub struct PredictedCosts {
    pub partitioner: PartitionerId,
    pub quality: QualityMetrics,
    pub partitioning_secs: f64,
    pub processing_secs: f64,
    pub end_to_end_secs: f64,
}

/// Result of an EASE selection: the winner plus the full predicted ranking.
#[derive(Debug, Clone)]
pub struct Selection {
    pub best: PartitionerId,
    pub goal: OptGoal,
    pub candidates: Vec<PredictedCosts>,
}

/// The trained EASE system.
pub struct Ease {
    pub quality: QualityPredictor,
    pub partitioning_time: PartitioningTimePredictor,
    pub processing_time: ProcessingTimePredictor,
    /// Candidate partitioners considered by the selector.
    pub catalog: Vec<PartitionerId>,
}

impl Ease {
    pub fn new(
        quality: QualityPredictor,
        partitioning_time: PartitioningTimePredictor,
        processing_time: ProcessingTimePredictor,
    ) -> Self {
        Ease { quality, partitioning_time, processing_time, catalog: PartitionerId::ALL.to_vec() }
    }

    /// Predict all costs for one candidate.
    pub fn predict_costs(
        &self,
        props: &GraphProperties,
        workload: Workload,
        k: usize,
        partitioner: PartitionerId,
    ) -> PredictedCosts {
        let quality = self.quality.predict(props, partitioner, k);
        let partitioning_secs = self.partitioning_time.predict(props, partitioner);
        let processing_secs = self.processing_time.predict_total(workload, props, &quality);
        PredictedCosts {
            partitioner,
            quality,
            partitioning_secs,
            processing_secs,
            end_to_end_secs: partitioning_secs + processing_secs,
        }
    }

    /// Automatic selection: evaluate the whole catalog and pick the
    /// predicted minimum for the goal.
    pub fn select(
        &self,
        props: &GraphProperties,
        workload: Workload,
        k: usize,
        goal: OptGoal,
    ) -> Selection {
        self.try_select(props, workload, k, goal).expect("selectable query")
    }

    /// [`Ease::select`] with typed errors instead of panics: an empty
    /// catalog and untrained workloads are reported as [`EaseError`]s. The
    /// error path the [`crate::service::EaseService`] exposes to users.
    pub fn try_select(
        &self,
        props: &GraphProperties,
        workload: Workload,
        k: usize,
        goal: OptGoal,
    ) -> Result<Selection, EaseError> {
        if self.catalog.is_empty() {
            return Err(EaseError::EmptyCatalog);
        }
        if !self.processing_time.supports(workload) {
            return Err(EaseError::UnsupportedWorkload {
                requested: workload.name().to_string(),
                supported: self
                    .processing_time
                    .supported_workloads()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            });
        }
        let candidates: Vec<PredictedCosts> =
            self.catalog.iter().map(|&p| self.predict_costs(props, workload, k, p)).collect();
        let best = candidates
            .iter()
            .min_by(|a, b| {
                goal_cost(a, goal).partial_cmp(&goal_cost(b, goal)).expect("finite predictions")
            })
            .expect("non-empty catalog")
            .partitioner;
        Ok(Selection { best, goal, candidates })
    }
}

fn goal_cost(c: &PredictedCosts, goal: OptGoal) -> f64 {
    match goal {
        OptGoal::EndToEnd => c.end_to_end_secs,
        OptGoal::ProcessingOnly => c.processing_secs,
    }
}

// ---------------------------------------------------------------------
// Baseline strategies over *measured* ground truth
// ---------------------------------------------------------------------

/// Measured ground-truth costs of one partitioner on one (graph, workload).
#[derive(Debug, Clone, Copy)]
pub struct TrueCosts {
    pub partitioner: PartitionerId,
    pub replication_factor: f64,
    pub partitioning_secs: f64,
    pub processing_secs: f64,
}

impl TrueCosts {
    pub fn cost(&self, goal: OptGoal) -> f64 {
        match goal {
            OptGoal::EndToEnd => self.partitioning_secs + self.processing_secs,
            OptGoal::ProcessingOnly => self.processing_secs,
        }
    }
}

/// The selection strategies compared in Table VIII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// EASE's prediction-based selector (S_PS).
    Ease,
    /// Oracle: the truly optimal partitioner (S_O).
    Optimal,
    /// Smallest *true* replication factor (S_SRF — the paper notes this is
    /// hypothetical, since the RF is unknown before partitioning).
    SmallestRf,
    /// Uniform random selection (S_R) — evaluated in expectation.
    Random,
    /// The worst partitioner (S_W).
    Worst,
}

impl Strategy {
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Ease => "S_PS",
            Strategy::Optimal => "S_O",
            Strategy::SmallestRf => "S_SRF",
            Strategy::Random => "S_R",
            Strategy::Worst => "S_W",
        }
    }
}

/// The achieved time of a baseline strategy on measured candidates.
/// `Random` returns the expectation over a uniform pick; the others return
/// the cost of their deterministic choice.
pub fn strategy_cost(strategy: Strategy, truth: &[TrueCosts], goal: OptGoal) -> f64 {
    assert!(!truth.is_empty());
    let cost = |t: &TrueCosts| t.cost(goal);
    match strategy {
        Strategy::Ease => panic!("S_PS needs predictions; use Ease::select"),
        Strategy::Optimal => truth.iter().map(cost).fold(f64::INFINITY, f64::min),
        Strategy::Worst => truth.iter().map(cost).fold(0.0, f64::max),
        Strategy::Random => truth.iter().map(cost).sum::<f64>() / truth.len() as f64,
        Strategy::SmallestRf => {
            let pick = truth
                .iter()
                .min_by(|a, b| {
                    a.replication_factor.partial_cmp(&b.replication_factor).expect("finite rf")
                })
                .expect("non-empty");
            pick.cost(goal)
        }
    }
}

/// The partitioner a deterministic baseline strategy picks.
pub fn strategy_pick(strategy: Strategy, truth: &[TrueCosts], goal: OptGoal) -> PartitionerId {
    assert!(!truth.is_empty());
    match strategy {
        Strategy::Ease => panic!("S_PS needs predictions; use Ease::select"),
        Strategy::Random => panic!("random strategy has no deterministic pick"),
        Strategy::Optimal => {
            truth
                .iter()
                .min_by(|a, b| a.cost(goal).partial_cmp(&b.cost(goal)).expect("finite"))
                .expect("non-empty")
                .partitioner
        }
        Strategy::Worst => {
            truth
                .iter()
                .max_by(|a, b| a.cost(goal).partial_cmp(&b.cost(goal)).expect("finite"))
                .expect("non-empty")
                .partitioner
        }
        Strategy::SmallestRf => {
            truth
                .iter()
                .min_by(|a, b| {
                    a.replication_factor.partial_cmp(&b.replication_factor).expect("finite")
                })
                .expect("non-empty")
                .partitioner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_truth() -> Vec<TrueCosts> {
        vec![
            TrueCosts {
                partitioner: PartitionerId::OneDD,
                replication_factor: 5.0,
                partitioning_secs: 1.0,
                processing_secs: 50.0,
            },
            TrueCosts {
                partitioner: PartitionerId::Ne,
                replication_factor: 1.5,
                partitioning_secs: 30.0,
                processing_secs: 10.0,
            },
            TrueCosts {
                partitioner: PartitionerId::Dbh,
                replication_factor: 3.0,
                partitioning_secs: 1.5,
                processing_secs: 20.0,
            },
        ]
    }

    #[test]
    fn oracle_and_worst_bracket_everything() {
        let truth = sample_truth();
        let o = strategy_cost(Strategy::Optimal, &truth, OptGoal::EndToEnd);
        let w = strategy_cost(Strategy::Worst, &truth, OptGoal::EndToEnd);
        let r = strategy_cost(Strategy::Random, &truth, OptGoal::EndToEnd);
        assert!((o - 21.5).abs() < 1e-12); // dbh: 1.5 + 20
        assert!((w - 51.0).abs() < 1e-12); // 1dd: 1 + 50
        assert!(o <= r && r <= w);
    }

    #[test]
    fn srf_ignores_partitioning_cost() {
        let truth = sample_truth();
        // smallest RF is NE, which pays 30s of partitioning
        assert_eq!(
            strategy_pick(Strategy::SmallestRf, &truth, OptGoal::EndToEnd),
            PartitionerId::Ne
        );
        let srf = strategy_cost(Strategy::SmallestRf, &truth, OptGoal::EndToEnd);
        assert!((srf - 40.0).abs() < 1e-12);
        // under processing-only, NE is actually optimal
        assert_eq!(
            strategy_pick(Strategy::Optimal, &truth, OptGoal::ProcessingOnly),
            PartitionerId::Ne
        );
    }

    #[test]
    fn goal_changes_the_oracle() {
        let truth = sample_truth();
        assert_eq!(strategy_pick(Strategy::Optimal, &truth, OptGoal::EndToEnd), PartitionerId::Dbh);
        assert_eq!(
            strategy_pick(Strategy::Optimal, &truth, OptGoal::ProcessingOnly),
            PartitionerId::Ne
        );
    }

    #[test]
    fn random_is_the_mean() {
        let truth = sample_truth();
        let expect = (51.0 + 40.0 + 21.5) / 3.0;
        let got = strategy_cost(Strategy::Random, &truth, OptGoal::EndToEnd);
        assert!((got - expect).abs() < 1e-12);
    }
}
