//! Typed errors for EASE's user-facing surface.
//!
//! The training/selection internals keep their invariant `assert!`s (those
//! guard programmer errors), but everything a *user* can trigger — bad
//! configuration, unreadable graph files, corrupt or version-skewed model
//! artifacts, queries for workloads the service was never trained on — is
//! reported as an [`EaseError`] instead of a panic.

use ease_graph::GraphIoError;
use ease_ml::PersistError;
use std::fmt;
use std::io;

/// Everything that can go wrong on EASE's public API surface.
#[derive(Debug)]
pub enum EaseError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// An edge-list line could not be parsed (`line` is 1-based).
    Parse { line: usize, message: String },
    /// A binary graph file (`.bel`) is structurally invalid.
    Format(String),
    /// A model artifact could not be decoded (bad magic, version skew,
    /// truncation, corruption).
    Persist(PersistError),
    /// A builder/pipeline configuration that cannot train.
    InvalidConfig(String),
    /// A recommendation was requested for a workload the service has no
    /// trained model for.
    UnsupportedWorkload { requested: String, supported: Vec<String> },
    /// The service's partitioner catalog is empty — nothing to rank.
    EmptyCatalog,
    /// The `ease serve` daemon or its socket protocol failed (see
    /// [`ServeError`] for the cases).
    Serve(ServeError),
}

/// Everything that can go wrong on the `ease serve` socket surface, on
/// either side of the connection.
#[derive(Debug)]
pub enum ServeError {
    /// A frame or payload violated the wire protocol (bad magic, version
    /// skew, unknown tag, truncation, oversized frame).
    Protocol(String),
    /// The peer closed the connection before a complete frame arrived.
    Disconnected,
    /// The daemon answered a request with an error (the message is the
    /// server-rendered [`EaseError`] text, printed verbatim by clients so
    /// failure output matches the one-shot CLI).
    Remote(String),
    /// The daemon could not take the socket address (already served, or
    /// the path is not bindable).
    Bind { socket: String, message: String },
    /// A fleet router refused to admit the query: the request's estimated
    /// derived-state footprint (`needed` bytes) exceeds every healthy
    /// backend's remaining memory-budget headroom (`headroom` is the best
    /// on offer). Shedding with this typed error is the whole point —
    /// the alternative is forcing a backend to spill or OOM. Retry
    /// elsewhere, later, or against a backend with a bigger budget.
    Overloaded { needed: u64, headroom: u64 },
    /// Unix-domain sockets are unavailable on this platform.
    Unsupported,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Disconnected => write!(f, "peer disconnected mid-frame"),
            ServeError::Remote(msg) => write!(f, "{msg}"),
            ServeError::Bind { socket, message } => {
                write!(f, "cannot serve on `{socket}`: {message}")
            }
            ServeError::Overloaded { needed, headroom } => write!(
                f,
                "fleet over memory budget: query needs ~{needed} bytes of analysis headroom, \
                 best backend has {headroom} — retry elsewhere or later"
            ),
            ServeError::Unsupported => {
                write!(f, "unix-domain sockets are not available on this platform")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for EaseError {
    fn from(e: ServeError) -> Self {
        EaseError::Serve(e)
    }
}

impl fmt::Display for EaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EaseError::Io(e) => write!(f, "I/O error: {e}"),
            EaseError::Parse { line, message } => {
                write!(f, "malformed edge-list line {line}: {message}")
            }
            EaseError::Format(message) => write!(f, "malformed binary edge list: {message}"),
            EaseError::Persist(e) => write!(f, "model persistence error: {e}"),
            EaseError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EaseError::UnsupportedWorkload { requested, supported } => write!(
                f,
                "no model trained for workload `{requested}` (supported: {})",
                supported.join(", ")
            ),
            EaseError::EmptyCatalog => write!(f, "partitioner catalog is empty"),
            // a remote error is an already-rendered EaseError from the
            // daemon: print it verbatim so `--daemon` failures read exactly
            // like one-shot failures
            EaseError::Serve(ServeError::Remote(msg)) => write!(f, "{msg}"),
            EaseError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl std::error::Error for EaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EaseError::Io(e) => Some(e),
            EaseError::Persist(e) => Some(e),
            EaseError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EaseError {
    fn from(e: io::Error) -> Self {
        EaseError::Io(e)
    }
}

impl From<PersistError> for EaseError {
    fn from(e: PersistError) -> Self {
        EaseError::Persist(e)
    }
}

impl From<GraphIoError> for EaseError {
    fn from(e: GraphIoError) -> Self {
        match e {
            GraphIoError::Io(e) => EaseError::Io(e),
            GraphIoError::Parse { line, message } => EaseError::Parse { line, message },
            GraphIoError::Format(message) => EaseError::Format(message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_parse_errors_keep_their_line_numbers() {
        let g = GraphIoError::Parse { line: 17, message: "bad token".into() };
        match EaseError::from(g) {
            EaseError::Parse { line, message } => {
                assert_eq!(line, 17);
                assert_eq!(message, "bad token");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn display_is_informative() {
        let e = EaseError::UnsupportedWorkload {
            requested: "lp".into(),
            supported: vec!["pr".into(), "cc".into()],
        };
        let s = e.to_string();
        assert!(s.contains("`lp`") && s.contains("pr, cc"), "{s}");
        assert!(EaseError::EmptyCatalog.to_string().contains("empty"));
    }

    #[test]
    fn io_and_persist_sources_are_preserved() {
        use std::error::Error;
        let e = EaseError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(e.source().is_some());
        let p = EaseError::from(ease_ml::PersistError::BadMagic);
        assert!(p.source().is_some());
    }
}
