//! Training-data acquisition — steps 1–3 of the paper's training pipeline
//! (Fig. 5): obtain graphs, partition them with every partitioner and
//! measure quality + run-time, then execute the processing workloads and
//! measure their (simulated) run-time.
//!
//! Profiling fans out over graphs with std scoped threads; each
//! worker prepares its graph exactly once — one [`PreparedGraph`] context
//! feeds the property extraction *and* every partitioner × k × workload
//! measurement — and drops it; the corpora are never materialized at once.
//! Materialized inputs are borrowed in place (no per-worker deep copies of
//! the edge list).

use ease_graph::bel::{BelSource, BelWriter};
use ease_graph::{Graph, GraphProperties, PreparedGraph, PropertyTier};
use ease_graphgen::grids::RmatSpec;
use ease_graphgen::realworld::{GraphType, TestGraph};
use ease_graphgen::rmat::Rmat;
use ease_partition::{run_partitioner_prepared, PartitionerId, QualityMetrics};
use ease_procsim::{ClusterSpec, DistributedGraph, Workload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// The timing mode lives next to the partition runner so the runner itself
// can skip the wall clock under `Deterministic`; re-exported here because
// it is part of the pipeline configuration surface.
pub use ease_partition::runner::{deterministic_partitioning_secs, TimingMode};

/// A graph to profile: either a lazily generated R-MAT spec or an already
/// materialized test graph.
#[derive(Debug, Clone)]
pub enum GraphInput {
    Rmat(RmatSpec),
    Materialized(TestGraph),
}

impl GraphInput {
    pub fn name(&self) -> &str {
        match self {
            GraphInput::Rmat(s) => &s.name,
            GraphInput::Materialized(t) => &t.name,
        }
    }

    pub fn graph_type(&self) -> Option<GraphType> {
        match self {
            GraphInput::Rmat(_) => None,
            GraphInput::Materialized(t) => Some(t.graph_type),
        }
    }

    /// Materialize an owned copy of the graph. Prefer [`GraphInput::prepare`]
    /// (borrows materialized inputs, no edge-list copy) — this clone-er
    /// survives for one-shot callers that need ownership.
    pub fn generate(&self) -> Graph {
        match self {
            GraphInput::Rmat(s) => s.generate(),
            GraphInput::Materialized(t) => t.graph.clone(),
        }
    }

    /// The profiling entry point: a [`PreparedGraph`] analysis context over
    /// this input. R-MAT specs *stream* their edges through
    /// [`Rmat::generate_into`] into a disk spill that is generated once per
    /// process, memory-mapped and shared ([`rmat_spilled_source`]) — the
    /// profiling fan-out's workers no longer each hold an owned
    /// `8 bytes × |E|` edge list on the heap. Materialized test graphs are
    /// *borrowed in place* — profiling workers used to deep-copy the full
    /// edge list per worker, now they share `&t.graph`. Both routes produce
    /// bit-identical analysis (same edge stream, same fingerprint).
    pub fn prepare(&self) -> PreparedGraph<'_> {
        match self {
            GraphInput::Rmat(s) => match rmat_spilled_source(s, &self.spec_key()) {
                Some(source) => PreparedGraph::from_source(Box::new(source)),
                // disk trouble: degrade to the old heap-owned path
                None => PreparedGraph::new(s.generate()),
            },
            GraphInput::Materialized(t) => PreparedGraph::of(&t.graph),
        }
    }

    /// [`GraphInput::prepare`] with a pinned construction-shard count.
    /// The profiling fan-out already saturates the machine with one worker
    /// per core, so its contexts pin shards to the leftover parallelism
    /// (usually 1) instead of the default one-shard-per-core — nested
    /// `workers × cores` thread explosions add scheduler noise to
    /// `Measured`-timing runs without speeding anything up.
    pub fn prepare_sharded(&self, shards: usize) -> PreparedGraph<'_> {
        self.prepare().with_shards(shards)
    }

    pub fn from_specs(specs: Vec<RmatSpec>) -> Vec<GraphInput> {
        specs.into_iter().map(GraphInput::Rmat).collect()
    }

    pub fn from_tests(tests: Vec<TestGraph>) -> Vec<GraphInput> {
        tests.into_iter().map(GraphInput::Materialized).collect()
    }

    /// A stable identity for "this input materializes the same graph":
    /// every generation parameter for R-MAT specs (float params captured by
    /// their bits), and the *content fingerprint* for materialized test
    /// graphs — their names (`soc-000`, ...) encode neither scale nor seed,
    /// so name-keying would alias different graphs across corpora. The
    /// fingerprint pass is one cheap traversal of an already in-memory
    /// edge list, amortized by the dozens of profiling passes that follow.
    fn spec_key(&self) -> String {
        match self {
            GraphInput::Rmat(s) => format!(
                "rmat/{}/{}/{:016x}{:016x}{:016x}{:016x}/{}/{}/{}",
                s.name,
                s.combo_index,
                s.params.a.to_bits(),
                s.params.b.to_bits(),
                s.params.c.to_bits(),
                s.params.d.to_bits(),
                s.num_vertices,
                s.num_edges,
                s.seed
            ),
            GraphInput::Materialized(t) => format!(
                "test/{}/{}/{:016x}",
                t.graph_type.name(),
                t.name,
                ease_graph::source::fingerprint_source(&t.graph)
            ),
        }
    }
}

/// Process-wide cache of spilled R-MAT corpora: per-spec-key cells whose
/// [`OnceLock`] latches the generate-to-disk work, so concurrent workers
/// preparing the *same* spec stream it exactly once while distinct specs
/// spill in parallel. `None` in a cell records a failed spill (disk full,
/// unwritable temp dir) so every later prepare takes the heap fallback
/// without retrying the disk.
type RmatSpillCell = Arc<OnceLock<Option<Arc<BelSource>>>>;

fn rmat_spill_cell(key: &str) -> RmatSpillCell {
    static CACHE: OnceLock<Mutex<HashMap<String, RmatSpillCell>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut map = cache.lock().expect("rmat spill cache lock");
    Arc::clone(map.entry(key.to_string()).or_default())
}

/// The shared memory-mapped edge stream for `spec`, spilling it to a temp
/// `.bel` file on first use (then unlinking it — the mapped pages outlive
/// the directory entry, so no file is ever left behind). `None` when the
/// spill could not be written; callers fall back to heap generation.
fn rmat_spilled_source(spec: &RmatSpec, key: &str) -> Option<Arc<BelSource>> {
    rmat_spill_cell(key).get_or_init(|| spill_rmat(spec).map(Arc::new)).clone()
}

/// Stream `spec`'s exact [`RmatSpec::generate`] edge order to disk via
/// [`Rmat::generate_into`] — the analysis over the mapped spill is
/// bit-identical to analysis over the generated heap graph because the
/// edge stream (and hence every fingerprint-keyed derivation) is the same.
fn spill_rmat(spec: &RmatSpec) -> Option<BelSource> {
    static SPILL_SEQ: AtomicUsize = AtomicUsize::new(0);
    // lint: relaxed-ok(unique-name counter)
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("ease-rmat-spill-{}-{seq}.bel", std::process::id()));
    let source = (|| {
        let mut writer = BelWriter::create(&path).ok()?;
        let rmat = Rmat::new(spec.params, spec.num_vertices, spec.num_edges, spec.seed);
        let mut io = Ok(());
        rmat.generate_into(&mut |e| {
            if io.is_ok() {
                io = writer.push(e);
            }
        });
        io.ok()?;
        writer.finish_with_vertices(spec.num_vertices).ok()?;
        BelSource::open(&path).ok()
    })();
    // unlink-after-mmap hygiene: success keeps only the mapping alive,
    // failure leaves nothing behind
    std::fs::remove_file(&path).ok();
    source
}

/// Shared [`PreparedGraph`] contexts for graph specs that appear in *both*
/// profiling corpora (ROADMAP open item): the quality and processing passes
/// used to generate + prepare such a graph once each; the pool keys
/// contexts by [`GraphInput::spec_key`] so every overlapping spec is built
/// exactly once total, and its memoized CSRs/degrees/triangles feed both
/// passes. Non-overlapping specs take the old per-pass path and are dropped
/// as soon as their worker finishes — the pool never grows beyond the
/// overlap.
pub struct PreparedPool {
    eligible: std::collections::HashSet<String>,
    /// Per-key latches: the map lock is held only to fetch/insert a cell;
    /// the (expensive) generate + prepare runs inside the cell's
    /// `OnceLock`, so concurrent *distinct* specs build in parallel while
    /// concurrent requests for the *same* spec still build exactly once.
    shared: Mutex<HashMap<String, Arc<OnceLock<Arc<PreparedGraph<'static>>>>>>,
    builds: AtomicUsize,
    reuses: AtomicUsize,
}

impl PreparedPool {
    /// A pool eligible for exactly the specs present in both corpora.
    pub fn for_overlap(a: &[GraphInput], b: &[GraphInput]) -> PreparedPool {
        let keys_a: std::collections::HashSet<String> =
            a.iter().map(GraphInput::spec_key).collect();
        let eligible = b.iter().map(GraphInput::spec_key).filter(|k| keys_a.contains(k)).collect();
        PreparedPool {
            eligible,
            shared: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
            reuses: AtomicUsize::new(0),
        }
    }

    /// An empty pool (no sharing) — the behaviour of the unpooled API.
    pub fn disabled() -> PreparedPool {
        PreparedPool {
            eligible: Default::default(),
            shared: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
            reuses: AtomicUsize::new(0),
        }
    }

    /// How many specs the two corpora share.
    pub fn overlap(&self) -> usize {
        self.eligible.len()
    }

    /// `(contexts built, contexts served from the pool)` so far.
    pub fn stats(&self) -> (usize, usize) {
        // lint: relaxed-ok(monotonic stats counters; readers tolerate stale values)
        (self.builds.load(Ordering::Relaxed), self.reuses.load(Ordering::Relaxed))
    }

    /// Prepare `input` with pinned construction shards, sharing the
    /// context if its spec is in the overlap.
    fn prepare<'i>(&self, input: &'i GraphInput, shards: usize) -> PooledPrepared<'i> {
        // No overlap (the disabled-pool legacy paths): skip spec_key
        // entirely — for materialized inputs it costs a full O(|E|)
        // fingerprint pass that could never produce a hit.
        if self.eligible.is_empty() {
            return PooledPrepared::Local(input.prepare_sharded(shards));
        }
        let key = input.spec_key();
        if !self.eligible.contains(&key) {
            return PooledPrepared::Local(input.prepare_sharded(shards));
        }
        let cell = {
            let mut shared = self.shared.lock().expect("prepared pool lock");
            Arc::clone(shared.entry(key.clone()).or_default())
        };
        // Build outside the map lock: racing workers for the same spec
        // serialize on this key's OnceLock only, never on each other.
        let mut built = false;
        let arc = cell.get_or_init(|| {
            built = true;
            Arc::new(
                match input {
                    GraphInput::Rmat(s) => match rmat_spilled_source(s, &key) {
                        Some(source) => PreparedGraph::from_source(Box::new(source)),
                        None => PreparedGraph::new(s.generate()),
                    },
                    GraphInput::Materialized(t) => PreparedGraph::new(t.graph.clone()),
                }
                .with_shards(shards),
            )
        });
        if built {
            self.builds.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(stats counter only)
        } else {
            self.reuses.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(stats counter only)
        }
        PooledPrepared::Pooled(Arc::clone(arc))
    }
}

/// A context that is either private to one profiling worker or shared
/// through the [`PreparedPool`]. One short-lived value per profiled graph,
/// so the variant size gap is irrelevant; boxing the local context would
/// only add an indirection on the hot path.
#[allow(clippy::large_enum_variant)]
enum PooledPrepared<'i> {
    Local(PreparedGraph<'i>),
    Pooled(Arc<PreparedGraph<'static>>),
}

impl PooledPrepared<'_> {
    fn get(&self) -> &PreparedGraph<'_> {
        match self {
            PooledPrepared::Local(p) => p,
            PooledPrepared::Pooled(p) => p,
        }
    }
}

/// One measured partitioning execution (training row for the quality and
/// partitioning-time predictors).
#[derive(Debug, Clone)]
pub struct QualityRecord {
    pub graph_name: String,
    pub graph_type: Option<GraphType>,
    pub props: GraphProperties,
    pub partitioner: PartitionerId,
    pub k: usize,
    pub metrics: QualityMetrics,
    pub partitioning_secs: f64,
}

/// One measured workload execution (training row for the processing-time
/// predictor). Carries the measured quality metrics of the partitioning the
/// workload ran on.
#[derive(Debug, Clone)]
pub struct ProcessingRecord {
    pub graph_name: String,
    pub graph_type: Option<GraphType>,
    pub props: GraphProperties,
    pub partitioner: PartitionerId,
    pub k: usize,
    pub metrics: QualityMetrics,
    pub partitioning_secs: f64,
    pub workload: Workload,
    /// The prediction target: average iteration time for fixed-iteration
    /// workloads, total time otherwise (paper Sec. V-C).
    pub target_secs: f64,
    /// Total processing time.
    pub total_secs: f64,
}

fn worker_count(n_items: usize) -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n_items.max(1))
}

/// Run `f` over the inputs with scoped-thread fan-out, collecting outputs.
/// `f` receives the per-context construction-shard budget: the leftover
/// parallelism after the worker fan-out (so `workers × shards ≈ cores`,
/// never `workers × cores` nested threads).
fn parallel_profile<T: Send, F>(inputs: &[GraphInput], f: F) -> Vec<T>
where
    F: Fn(&GraphInput, usize) -> Vec<T> + Sync,
{
    let results: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = worker_count(inputs.len());
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let ctx_shards = (cores / workers.max(1)).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // lint: relaxed-ok(work-stealing ticket counter; item handoff is via scope join)
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= inputs.len() {
                    break;
                }
                let out = f(&inputs[idx], ctx_shards);
                results.lock().unwrap().push((idx, out));
            });
        }
    });
    // deterministic output order regardless of thread scheduling
    let mut chunks = results.into_inner().unwrap();
    chunks.sort_by_key(|(idx, _)| *idx);
    chunks.into_iter().flat_map(|(_, out)| out).collect()
}

/// Step 2 of the pipeline: partition every input graph with every
/// partitioner for every `k`, measuring quality metrics and wall-clock
/// partitioning time.
pub fn profile_quality(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    ks: &[usize],
    seed: u64,
) -> Vec<QualityRecord> {
    profile_quality_with(inputs, partitioners, ks, seed, TimingMode::Measured)
}

/// [`profile_quality`] with an explicit [`TimingMode`].
pub fn profile_quality_with(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    ks: &[usize],
    seed: u64,
    timing: TimingMode,
) -> Vec<QualityRecord> {
    profile_quality_pooled(inputs, partitioners, ks, seed, timing, &PreparedPool::disabled())
}

/// [`profile_quality_with`] sharing prepared contexts through `pool` for
/// specs that also appear in the processing corpus. Records are identical
/// to the unpooled call — the pool only changes *where* contexts come from.
pub fn profile_quality_pooled(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    ks: &[usize],
    seed: u64,
    timing: TimingMode,
    pool: &PreparedPool,
) -> Vec<QualityRecord> {
    parallel_profile(inputs, |input, ctx_shards| {
        let pooled = pool.prepare(input, ctx_shards);
        let prepared = pooled.get();
        // Extracting properties first also warms the context (degree table,
        // undirected CSR, triangles), so no partitioner run is charged for
        // the shared derivation under measured timing.
        let props = GraphProperties::compute_prepared(prepared, PropertyTier::Advanced);
        let mut out = Vec::with_capacity(partitioners.len() * ks.len());
        for &p in partitioners {
            for &k in ks {
                let run = run_partitioner_prepared(p, prepared, k, seed ^ k as u64, timing);
                out.push(QualityRecord {
                    graph_name: input.name().to_string(),
                    graph_type: input.graph_type(),
                    props: props.clone(),
                    partitioner: p,
                    k,
                    metrics: run.metrics,
                    partitioning_secs: run.partitioning_secs,
                });
            }
        }
        out
    })
}

/// Steps 2+3 combined for the time predictors: partition with every
/// partitioner at a fixed `k`, then execute every workload on the
/// partitioned graph with the cluster cost model.
pub fn profile_processing(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    k: usize,
    workloads: &[Workload],
    seed: u64,
) -> Vec<ProcessingRecord> {
    profile_processing_with(inputs, partitioners, k, workloads, seed, TimingMode::Measured)
}

/// [`profile_processing`] with an explicit [`TimingMode`].
pub fn profile_processing_with(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    k: usize,
    workloads: &[Workload],
    seed: u64,
    timing: TimingMode,
) -> Vec<ProcessingRecord> {
    profile_processing_pooled(
        inputs,
        partitioners,
        k,
        workloads,
        seed,
        timing,
        &PreparedPool::disabled(),
    )
}

/// [`profile_processing_with`] sharing prepared contexts through `pool`.
pub fn profile_processing_pooled(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    k: usize,
    workloads: &[Workload],
    seed: u64,
    timing: TimingMode,
    pool: &PreparedPool,
) -> Vec<ProcessingRecord> {
    let cluster = ClusterSpec::new(k);
    parallel_profile(inputs, |input, ctx_shards| {
        let pooled = pool.prepare(input, ctx_shards);
        let prepared = pooled.get();
        let props = GraphProperties::compute_prepared(prepared, PropertyTier::Advanced);
        let mut out = Vec::with_capacity(partitioners.len() * workloads.len());
        for &p in partitioners {
            let run = run_partitioner_prepared(p, prepared, k, seed, timing);
            let partitioning_secs = run.partitioning_secs;
            let dg = DistributedGraph::build_prepared(prepared, &run.partition);
            for &w in workloads {
                let report = w.execute(&dg, &cluster);
                out.push(ProcessingRecord {
                    graph_name: input.name().to_string(),
                    graph_type: input.graph_type(),
                    props: props.clone(),
                    partitioner: p,
                    k,
                    metrics: run.metrics,
                    partitioning_secs,
                    workload: w,
                    target_secs: w.prediction_target(&report),
                    total_secs: report.total_secs,
                });
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graphgen::rmat::RmatParams;

    fn tiny_inputs(n: usize) -> Vec<GraphInput> {
        (0..n)
            .map(|i| {
                GraphInput::Rmat(RmatSpec {
                    name: format!("tiny-{i}"),
                    combo_index: i % 9,
                    params: RmatParams::new(0.45, 0.22, 0.22, 0.11),
                    num_vertices: 128,
                    num_edges: 700,
                    seed: i as u64,
                })
            })
            .collect()
    }

    #[test]
    fn quality_profiling_covers_the_cross_product() {
        let inputs = tiny_inputs(3);
        let parts = [PartitionerId::OneDD, PartitionerId::Hdrf];
        let records = profile_quality(&inputs, &parts, &[2, 4], 1);
        assert_eq!(records.len(), 3 * 2 * 2);
        for r in &records {
            assert!(r.metrics.replication_factor >= 1.0);
            assert!(r.partitioning_secs >= 0.0);
            assert!(r.props.avg_lcc.is_some(), "advanced props computed");
        }
        // all combos present
        let combos: std::collections::HashSet<_> =
            records.iter().map(|r| (r.graph_name.clone(), r.partitioner, r.k)).collect();
        assert_eq!(combos.len(), 12);
    }

    #[test]
    fn processing_profiling_executes_workloads() {
        let inputs = tiny_inputs(2);
        let parts = [PartitionerId::Dbh];
        let workloads = [Workload::PageRank { iterations: 3 }, Workload::ConnectedComponents];
        let records = profile_processing(&inputs, &parts, 4, &workloads, 2);
        assert_eq!(records.len(), 2 * 2); // 2 graphs x 1 partitioner x 2 workloads
        for r in &records {
            assert!(r.target_secs > 0.0, "{}", r.workload.name());
            assert!(r.total_secs >= r.target_secs * 0.99);
        }
    }

    #[test]
    fn materialized_inputs_round_trip() {
        let tg = ease_graphgen::realworld::generate_typed(
            GraphType::Social,
            0,
            ease_graphgen::Scale::Tiny,
            3,
        );
        let gi = GraphInput::Materialized(tg.clone());
        assert_eq!(gi.graph_type(), Some(GraphType::Social));
        assert_eq!(gi.generate().num_edges(), tg.graph.num_edges());
    }

    #[test]
    fn pooled_profiling_builds_overlapping_specs_once_and_matches_unpooled() {
        // both "corpora" share their first two specs
        let quality_inputs = tiny_inputs(3);
        let processing_inputs: Vec<GraphInput> = tiny_inputs(2);
        let parts = [PartitionerId::OneDD, PartitionerId::Dbh];
        let workloads = [Workload::PageRank { iterations: 3 }];
        let pool = PreparedPool::for_overlap(&quality_inputs, &processing_inputs);
        assert_eq!(pool.overlap(), 2);
        let q_pooled = profile_quality_pooled(
            &quality_inputs,
            &parts,
            &[2, 4],
            1,
            TimingMode::Deterministic,
            &pool,
        );
        let p_pooled = profile_processing_pooled(
            &processing_inputs,
            &parts,
            4,
            &workloads,
            2,
            TimingMode::Deterministic,
            &pool,
        );
        // the two overlapping specs were built exactly once total, then
        // served back to the second pass from the pool
        let (builds, reuses) = pool.stats();
        assert_eq!(builds, 2, "one build per overlapping spec");
        assert_eq!(reuses, 2, "the processing pass reused both");
        // pooled records are identical to the unpooled path
        let q_plain =
            profile_quality_with(&quality_inputs, &parts, &[2, 4], 1, TimingMode::Deterministic);
        let p_plain = profile_processing_with(
            &processing_inputs,
            &parts,
            4,
            &workloads,
            2,
            TimingMode::Deterministic,
        );
        assert_eq!(q_pooled.len(), q_plain.len());
        for (a, b) in q_pooled.iter().zip(&q_plain) {
            assert_eq!(a.graph_name, b.graph_name);
            assert_eq!(a.props, b.props);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.partitioning_secs.to_bits(), b.partitioning_secs.to_bits());
        }
        assert_eq!(p_pooled.len(), p_plain.len());
        for (a, b) in p_pooled.iter().zip(&p_plain) {
            assert_eq!(a.graph_name, b.graph_name);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.target_secs.to_bits(), b.target_secs.to_bits());
        }
        // disjoint specs never enter the pool
        let disjoint = PreparedPool::for_overlap(&tiny_inputs(1), &tiny_inputs(0));
        assert_eq!(disjoint.overlap(), 0);
    }

    #[test]
    fn prepare_borrows_materialized_graphs_instead_of_copying() {
        let tg = ease_graphgen::realworld::generate_typed(
            GraphType::Web,
            0,
            ease_graphgen::Scale::Tiny,
            5,
        );
        let gi = GraphInput::Materialized(tg.clone());
        let prepared = gi.prepare();
        // borrowed in place: the prepared context points at the input's own
        // edge storage, not at a per-worker deep copy
        let GraphInput::Materialized(inner) = &gi else { unreachable!() };
        assert!(std::ptr::eq(prepared.graph().expect("graph-backed"), &inner.graph));
        assert!(prepared.shared_graph().is_none());
        // R-MAT specs stream to a shared disk spill: the context is
        // source-backed (no owned edge list) yet analyzes the exact same
        // edge stream as a heap generate
        let spec = tiny_inputs(1).remove(0);
        let spilled = spec.prepare();
        assert!(spilled.try_graph().is_none(), "no heap edge list for R-MAT inputs");
        assert_eq!(spilled.num_edges(), 700);
        let GraphInput::Rmat(s) = &spec else { unreachable!() };
        let heap = PreparedGraph::new(s.generate());
        assert_eq!(spilled.fingerprint(), heap.fingerprint(), "same edge stream bit-for-bit");
        // the spill is cached per spec: preparing again shares the mapping
        // rather than regenerating, and no temp file stays on disk
        let again = spec.prepare();
        assert_eq!(again.fingerprint(), heap.fingerprint());
    }

    #[test]
    fn rmat_spills_leave_no_temp_files_behind() {
        let spec = GraphInput::Rmat(RmatSpec {
            name: "spill-hygiene".into(),
            combo_index: 0,
            params: RmatParams::new(0.45, 0.22, 0.22, 0.11),
            num_vertices: 128,
            num_edges: 500,
            seed: 99,
        });
        let prepared = spec.prepare();
        assert_eq!(prepared.num_edges(), 500);
        // unlink-after-mmap: the spill file is gone even while the mapped
        // source is still alive and serving edges
        let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
            .expect("read temp dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&format!("ease-rmat-spill-{}-", std::process::id())))
            .collect();
        assert!(leftovers.is_empty(), "spill files left behind: {leftovers:?}");
    }
}
