//! Training-data acquisition — steps 1–3 of the paper's training pipeline
//! (Fig. 5): obtain graphs, partition them with every partitioner and
//! measure quality + run-time, then execute the processing workloads and
//! measure their (simulated) run-time.
//!
//! Profiling fans out over graphs with std scoped threads; each
//! worker prepares its graph exactly once — one [`PreparedGraph`] context
//! feeds the property extraction *and* every partitioner × k × workload
//! measurement — and drops it; the corpora are never materialized at once.
//! Materialized inputs are borrowed in place (no per-worker deep copies of
//! the edge list).

use ease_graph::{Graph, GraphProperties, PreparedGraph, PropertyTier};
use ease_graphgen::grids::RmatSpec;
use ease_graphgen::realworld::{GraphType, TestGraph};
use ease_partition::{run_partitioner_prepared, PartitionerId, QualityMetrics};
use ease_procsim::{ClusterSpec, DistributedGraph, Workload};
use std::sync::Mutex;

// The timing mode lives next to the partition runner so the runner itself
// can skip the wall clock under `Deterministic`; re-exported here because
// it is part of the pipeline configuration surface.
pub use ease_partition::runner::{deterministic_partitioning_secs, TimingMode};

/// A graph to profile: either a lazily generated R-MAT spec or an already
/// materialized test graph.
#[derive(Debug, Clone)]
pub enum GraphInput {
    Rmat(RmatSpec),
    Materialized(TestGraph),
}

impl GraphInput {
    pub fn name(&self) -> &str {
        match self {
            GraphInput::Rmat(s) => &s.name,
            GraphInput::Materialized(t) => &t.name,
        }
    }

    pub fn graph_type(&self) -> Option<GraphType> {
        match self {
            GraphInput::Rmat(_) => None,
            GraphInput::Materialized(t) => Some(t.graph_type),
        }
    }

    /// Materialize an owned copy of the graph. Prefer [`GraphInput::prepare`]
    /// (borrows materialized inputs, no edge-list copy) — this clone-er
    /// survives for one-shot callers that need ownership.
    pub fn generate(&self) -> Graph {
        match self {
            GraphInput::Rmat(s) => s.generate(),
            GraphInput::Materialized(t) => t.graph.clone(),
        }
    }

    /// The profiling entry point: a [`PreparedGraph`] analysis context over
    /// this input. R-MAT specs generate and own their graph; materialized
    /// test graphs are *borrowed in place* — profiling workers used to
    /// deep-copy the full edge list per worker, now they share `&t.graph`.
    pub fn prepare(&self) -> PreparedGraph<'_> {
        match self {
            GraphInput::Rmat(s) => PreparedGraph::new(s.generate()),
            GraphInput::Materialized(t) => PreparedGraph::of(&t.graph),
        }
    }

    pub fn from_specs(specs: Vec<RmatSpec>) -> Vec<GraphInput> {
        specs.into_iter().map(GraphInput::Rmat).collect()
    }

    pub fn from_tests(tests: Vec<TestGraph>) -> Vec<GraphInput> {
        tests.into_iter().map(GraphInput::Materialized).collect()
    }
}

/// One measured partitioning execution (training row for the quality and
/// partitioning-time predictors).
#[derive(Debug, Clone)]
pub struct QualityRecord {
    pub graph_name: String,
    pub graph_type: Option<GraphType>,
    pub props: GraphProperties,
    pub partitioner: PartitionerId,
    pub k: usize,
    pub metrics: QualityMetrics,
    pub partitioning_secs: f64,
}

/// One measured workload execution (training row for the processing-time
/// predictor). Carries the measured quality metrics of the partitioning the
/// workload ran on.
#[derive(Debug, Clone)]
pub struct ProcessingRecord {
    pub graph_name: String,
    pub graph_type: Option<GraphType>,
    pub props: GraphProperties,
    pub partitioner: PartitionerId,
    pub k: usize,
    pub metrics: QualityMetrics,
    pub partitioning_secs: f64,
    pub workload: Workload,
    /// The prediction target: average iteration time for fixed-iteration
    /// workloads, total time otherwise (paper Sec. V-C).
    pub target_secs: f64,
    /// Total processing time.
    pub total_secs: f64,
}

fn worker_count(n_items: usize) -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n_items.max(1))
}

/// Run `f` over the inputs with scoped-thread fan-out, collecting outputs.
fn parallel_profile<T: Send, F>(inputs: &[GraphInput], f: F) -> Vec<T>
where
    F: Fn(&GraphInput) -> Vec<T> + Sync,
{
    let results: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = worker_count(inputs.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= inputs.len() {
                    break;
                }
                let out = f(&inputs[idx]);
                results.lock().unwrap().push((idx, out));
            });
        }
    });
    // deterministic output order regardless of thread scheduling
    let mut chunks = results.into_inner().unwrap();
    chunks.sort_by_key(|(idx, _)| *idx);
    chunks.into_iter().flat_map(|(_, out)| out).collect()
}

/// Step 2 of the pipeline: partition every input graph with every
/// partitioner for every `k`, measuring quality metrics and wall-clock
/// partitioning time.
pub fn profile_quality(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    ks: &[usize],
    seed: u64,
) -> Vec<QualityRecord> {
    profile_quality_with(inputs, partitioners, ks, seed, TimingMode::Measured)
}

/// [`profile_quality`] with an explicit [`TimingMode`].
pub fn profile_quality_with(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    ks: &[usize],
    seed: u64,
    timing: TimingMode,
) -> Vec<QualityRecord> {
    parallel_profile(inputs, |input| {
        let prepared = input.prepare();
        // Extracting properties first also warms the context (degree table,
        // undirected CSR, triangles), so no partitioner run is charged for
        // the shared derivation under measured timing.
        let props = GraphProperties::compute_prepared(&prepared, PropertyTier::Advanced);
        let mut out = Vec::with_capacity(partitioners.len() * ks.len());
        for &p in partitioners {
            for &k in ks {
                let run = run_partitioner_prepared(p, &prepared, k, seed ^ k as u64, timing);
                out.push(QualityRecord {
                    graph_name: input.name().to_string(),
                    graph_type: input.graph_type(),
                    props: props.clone(),
                    partitioner: p,
                    k,
                    metrics: run.metrics,
                    partitioning_secs: run.partitioning_secs,
                });
            }
        }
        out
    })
}

/// Steps 2+3 combined for the time predictors: partition with every
/// partitioner at a fixed `k`, then execute every workload on the
/// partitioned graph with the cluster cost model.
pub fn profile_processing(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    k: usize,
    workloads: &[Workload],
    seed: u64,
) -> Vec<ProcessingRecord> {
    profile_processing_with(inputs, partitioners, k, workloads, seed, TimingMode::Measured)
}

/// [`profile_processing`] with an explicit [`TimingMode`].
pub fn profile_processing_with(
    inputs: &[GraphInput],
    partitioners: &[PartitionerId],
    k: usize,
    workloads: &[Workload],
    seed: u64,
    timing: TimingMode,
) -> Vec<ProcessingRecord> {
    let cluster = ClusterSpec::new(k);
    parallel_profile(inputs, |input| {
        let prepared = input.prepare();
        let props = GraphProperties::compute_prepared(&prepared, PropertyTier::Advanced);
        let mut out = Vec::with_capacity(partitioners.len() * workloads.len());
        for &p in partitioners {
            let run = run_partitioner_prepared(p, &prepared, k, seed, timing);
            let partitioning_secs = run.partitioning_secs;
            let dg = DistributedGraph::build_prepared(&prepared, &run.partition);
            for &w in workloads {
                let report = w.execute(&dg, &cluster);
                out.push(ProcessingRecord {
                    graph_name: input.name().to_string(),
                    graph_type: input.graph_type(),
                    props: props.clone(),
                    partitioner: p,
                    k,
                    metrics: run.metrics,
                    partitioning_secs,
                    workload: w,
                    target_secs: w.prediction_target(&report),
                    total_secs: report.total_secs,
                });
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graphgen::rmat::RmatParams;

    fn tiny_inputs(n: usize) -> Vec<GraphInput> {
        (0..n)
            .map(|i| {
                GraphInput::Rmat(RmatSpec {
                    name: format!("tiny-{i}"),
                    combo_index: i % 9,
                    params: RmatParams::new(0.45, 0.22, 0.22, 0.11),
                    num_vertices: 128,
                    num_edges: 700,
                    seed: i as u64,
                })
            })
            .collect()
    }

    #[test]
    fn quality_profiling_covers_the_cross_product() {
        let inputs = tiny_inputs(3);
        let parts = [PartitionerId::OneDD, PartitionerId::Hdrf];
        let records = profile_quality(&inputs, &parts, &[2, 4], 1);
        assert_eq!(records.len(), 3 * 2 * 2);
        for r in &records {
            assert!(r.metrics.replication_factor >= 1.0);
            assert!(r.partitioning_secs >= 0.0);
            assert!(r.props.avg_lcc.is_some(), "advanced props computed");
        }
        // all combos present
        let combos: std::collections::HashSet<_> =
            records.iter().map(|r| (r.graph_name.clone(), r.partitioner, r.k)).collect();
        assert_eq!(combos.len(), 12);
    }

    #[test]
    fn processing_profiling_executes_workloads() {
        let inputs = tiny_inputs(2);
        let parts = [PartitionerId::Dbh];
        let workloads = [Workload::PageRank { iterations: 3 }, Workload::ConnectedComponents];
        let records = profile_processing(&inputs, &parts, 4, &workloads, 2);
        assert_eq!(records.len(), 2 * 2); // 2 graphs x 1 partitioner x 2 workloads
        for r in &records {
            assert!(r.target_secs > 0.0, "{}", r.workload.name());
            assert!(r.total_secs >= r.target_secs * 0.99);
        }
    }

    #[test]
    fn materialized_inputs_round_trip() {
        let tg = ease_graphgen::realworld::generate_typed(
            GraphType::Social,
            0,
            ease_graphgen::Scale::Tiny,
            3,
        );
        let gi = GraphInput::Materialized(tg.clone());
        assert_eq!(gi.graph_type(), Some(GraphType::Social));
        assert_eq!(gi.generate().num_edges(), tg.graph.num_edges());
    }

    #[test]
    fn prepare_borrows_materialized_graphs_instead_of_copying() {
        let tg = ease_graphgen::realworld::generate_typed(
            GraphType::Web,
            0,
            ease_graphgen::Scale::Tiny,
            5,
        );
        let gi = GraphInput::Materialized(tg.clone());
        let prepared = gi.prepare();
        // borrowed in place: the prepared context points at the input's own
        // edge storage, not at a per-worker deep copy
        let GraphInput::Materialized(inner) = &gi else { unreachable!() };
        assert!(std::ptr::eq(prepared.graph(), &inner.graph));
        assert!(prepared.shared_graph().is_none());
        // R-MAT specs generate fresh and hand the context ownership
        let spec = tiny_inputs(1).remove(0);
        let owned = spec.prepare();
        assert!(owned.shared_graph().is_some());
        assert_eq!(owned.num_edges(), 700);
    }
}
