//! Evaluation harness: regenerates the paper's accuracy matrices
//! (Tables V/VI, Fig. 7) and the selection-strategy comparison
//! (Table VIII, Fig. 9, and the headline numbers of Sec. I).

use crate::predictors::{PartitioningTimePredictor, ProcessingTimePredictor, QualityPredictor};
use crate::profiling::{ProcessingRecord, QualityRecord};
use crate::selector::{strategy_cost, strategy_pick, Ease, OptGoal, Strategy, TrueCosts};
use ease_graph::GraphProperties;
use ease_graphgen::realworld::GraphType;
use ease_ml::metrics::{mape, rmse};
use ease_partition::{PartitionerId, QualityTarget};
use ease_procsim::Workload;

// ---------------------------------------------------------------------
// Prediction accuracy (Tables V & VI, Fig. 7)
// ---------------------------------------------------------------------

/// Overall MAPE + RMSE of the quality predictor per target on a test set
/// (Table VI rows).
pub fn quality_test_scores(
    qp: &QualityPredictor,
    test: &[QualityRecord],
) -> Vec<(QualityTarget, f64, f64)> {
    QualityTarget::ALL
        .iter()
        .map(|&target| {
            let mut y_true = Vec::with_capacity(test.len());
            let mut y_pred = Vec::with_capacity(test.len());
            for r in test {
                y_true.push(r.metrics.get(target));
                y_pred.push(qp.predict_target(target, &r.props, r.partitioner, r.k));
            }
            (target, mape(&y_true, &y_pred), rmse(&y_true, &y_pred))
        })
        .collect()
}

/// Per-(graph type × partitioner) MAPE matrix for one quality target —
/// the Fig. 7 heatmaps.
pub fn mape_heatmap(
    qp: &QualityPredictor,
    test: &[QualityRecord],
    target: QualityTarget,
) -> Vec<(GraphType, Vec<(PartitionerId, f64)>)> {
    GraphType::ALL
        .iter()
        .filter_map(|&gt| {
            let row: Vec<(PartitionerId, f64)> = PartitionerId::ALL
                .iter()
                .filter_map(|&p| {
                    let mut y_true = Vec::new();
                    let mut y_pred = Vec::new();
                    for r in test.iter().filter(|r| r.graph_type == Some(gt) && r.partitioner == p)
                    {
                        y_true.push(r.metrics.get(target));
                        y_pred.push(qp.predict_target(target, &r.props, r.partitioner, r.k));
                    }
                    if y_true.is_empty() {
                        None
                    } else {
                        Some((p, mape(&y_true, &y_pred)))
                    }
                })
                .collect();
            if row.is_empty() {
                None
            } else {
                Some((gt, row))
            }
        })
        .collect()
}

/// MAPE per graph type (averaging all partitioners), used by the
/// enrichment study (Fig. 8).
pub fn mape_by_type(
    qp: &QualityPredictor,
    test: &[QualityRecord],
    target: QualityTarget,
) -> Vec<(GraphType, f64)> {
    GraphType::ALL
        .iter()
        .filter_map(|&gt| {
            let mut y_true = Vec::new();
            let mut y_pred = Vec::new();
            for r in test.iter().filter(|r| r.graph_type == Some(gt)) {
                y_true.push(r.metrics.get(target));
                y_pred.push(qp.predict_target(target, &r.props, r.partitioner, r.k));
            }
            if y_true.is_empty() {
                None
            } else {
                Some((gt, mape(&y_true, &y_pred)))
            }
        })
        .collect()
}

/// Table V: per-workload MAPE of the processing-time predictor on a test
/// set of processing records.
pub fn processing_test_scores(
    pp: &ProcessingTimePredictor,
    test: &[ProcessingRecord],
) -> Vec<(&'static str, f64)> {
    let mut names: Vec<&'static str> = Vec::new();
    for r in test {
        if !names.contains(&r.workload.name()) {
            names.push(r.workload.name());
        }
    }
    names
        .into_iter()
        .map(|name| {
            let mut y_true = Vec::new();
            let mut y_pred = Vec::new();
            for r in test.iter().filter(|r| r.workload.name() == name) {
                y_true.push(r.target_secs);
                y_pred.push(pp.predict_target(r.workload, &r.props, &r.metrics));
            }
            (name, mape(&y_true, &y_pred))
        })
        .collect()
}

/// Test MAPE of the partitioning-time predictor.
pub fn partitioning_time_score(tp: &PartitioningTimePredictor, test: &[QualityRecord]) -> f64 {
    let y_true: Vec<f64> = test.iter().map(|r| r.partitioning_secs).collect();
    let y_pred: Vec<f64> = test.iter().map(|r| tp.predict(&r.props, r.partitioner)).collect();
    mape(&y_true, &y_pred)
}

// ---------------------------------------------------------------------
// Table VII: grouped feature importances
// ---------------------------------------------------------------------

/// Collapse the quality predictor's per-column importances into the paper's
/// Table VII feature groups: Partitioner (one-hot columns summed),
/// Mean Degree, #Partitions, Degree Distr. (in+out skew), Density.
/// `|E|`/`|V|` columns are folded into Density's group? No — the paper's
/// basic feature set for quality is exactly {mean degree, density, in-skew,
/// out-skew} + k + partitioner; |E| and |V| enter only via those ratios, so
/// their raw columns are reported under "Graph Size" if present.
pub fn grouped_importances(
    qp: &QualityPredictor,
    target: QualityTarget,
) -> Option<Vec<(&'static str, f64)>> {
    let imp = qp.importances(target)?;
    let names = crate::features::quality_feature_names(qp.tier);
    let mut groups: Vec<(&'static str, f64)> = vec![
        ("Partitioner", 0.0),
        ("Mean Degree", 0.0),
        ("#Partitions", 0.0),
        ("Degree Distr.", 0.0),
        ("Density", 0.0),
        ("Graph Size", 0.0),
        ("Triangles/LCC", 0.0),
    ];
    let mut add = |label: &str, v: f64| {
        for (g, acc) in groups.iter_mut() {
            if *g == label {
                *acc += v;
            }
        }
    };
    for (name, v) in names.iter().zip(&imp) {
        let label = if name.starts_with("partitioner_") {
            "Partitioner"
        } else if name == "mean_degree" {
            "Mean Degree"
        } else if name == "num_partitions" {
            "#Partitions"
        } else if name.ends_with("degree_skew") {
            "Degree Distr."
        } else if name == "density" {
            "Density"
        } else if name == "num_edges" || name == "num_vertices" {
            "Graph Size"
        } else {
            "Triangles/LCC"
        };
        add(label, *v);
    }
    // the five canonical Table VII groups always appear; extras only when
    // the tier actually contributed them
    const CANONICAL: [&str; 5] =
        ["Partitioner", "Mean Degree", "#Partitions", "Degree Distr.", "Density"];
    groups.retain(|(label, v)| CANONICAL.contains(label) || *v > 0.0);
    Some(groups)
}

// ---------------------------------------------------------------------
// Table VIII: strategy comparison
// ---------------------------------------------------------------------

/// Measured truth for one (graph, workload) pair across all partitioners.
#[derive(Debug, Clone)]
pub struct GroupTruth {
    pub graph_name: String,
    pub workload: Workload,
    pub props: GraphProperties,
    pub truth: Vec<TrueCosts>,
}

/// Group processing records into per-(graph, workload) truth tables.
pub fn group_truth(records: &[ProcessingRecord]) -> Vec<GroupTruth> {
    let mut groups: Vec<GroupTruth> = Vec::new();
    for r in records {
        let found = groups
            .iter_mut()
            .find(|g| g.graph_name == r.graph_name && g.workload.name() == r.workload.name());
        let costs = TrueCosts {
            partitioner: r.partitioner,
            replication_factor: r.metrics.replication_factor,
            partitioning_secs: r.partitioning_secs,
            processing_secs: r.total_secs,
        };
        match found {
            Some(g) => g.truth.push(costs),
            None => groups.push(GroupTruth {
                graph_name: r.graph_name.clone(),
                workload: r.workload,
                props: r.props.clone(),
                truth: vec![costs],
            }),
        }
    }
    groups
}

/// One Table VIII row: the average cost of S_PS's choice as a fraction of
/// each baseline, for one workload and goal.
#[derive(Debug, Clone)]
pub struct SelectionRow {
    pub workload: &'static str,
    pub goal: OptGoal,
    /// S_PS cost / baseline cost, averaged over test graphs — the paper's
    /// "SPS in % of baselines" columns (× 100).
    pub vs_optimal: f64,
    pub vs_srf: f64,
    pub vs_random: f64,
    pub vs_worst: f64,
    /// S_SRF cost / S_O cost (the paper's last column).
    pub srf_vs_optimal: f64,
    /// Fraction of graphs where S_PS picked the true optimum.
    pub optimal_pick_rate: f64,
    pub graphs: usize,
}

/// Aggregate selection metrics (the Sec. I headline numbers).
#[derive(Debug, Clone, Default)]
pub struct HeadlineStats {
    pub optimal_pick_rate: f64,
    pub avg_vs_random: f64,
    pub avg_vs_srf: f64,
    pub avg_vs_worst: f64,
    pub avg_vs_optimal: f64,
}

/// Evaluate EASE's selector against the baselines on measured ground truth.
pub fn evaluate_selection(
    ease: &Ease,
    groups: &[GroupTruth],
    k: usize,
    goal: OptGoal,
) -> (Vec<SelectionRow>, HeadlineStats) {
    let mut workloads: Vec<Workload> = Vec::new();
    for g in groups {
        if !workloads.iter().any(|w| w.name() == g.workload.name()) {
            workloads.push(g.workload);
        }
    }
    let mut rows = Vec::new();
    let mut all_ratios = HeadlineStats::default();
    let mut all_hits = 0usize;
    let mut all_count = 0usize;
    for w in workloads {
        let mut vs = [0.0f64; 4]; // optimal, srf, random, worst
        let mut srf_vs_o = 0.0;
        let mut hits = 0usize;
        let mut count = 0usize;
        for g in groups.iter().filter(|g| g.workload.name() == w.name()) {
            let selection = ease.select(&g.props, g.workload, k, goal);
            let pick_cost = g
                .truth
                .iter()
                .find(|t| t.partitioner == selection.best)
                .map(|t| t.cost(goal))
                .expect("selected partitioner measured");
            let o = strategy_cost(Strategy::Optimal, &g.truth, goal);
            let srf = strategy_cost(Strategy::SmallestRf, &g.truth, goal);
            let r = strategy_cost(Strategy::Random, &g.truth, goal);
            let worst = strategy_cost(Strategy::Worst, &g.truth, goal);
            vs[0] += pick_cost / o.max(1e-12);
            vs[1] += pick_cost / srf.max(1e-12);
            vs[2] += pick_cost / r.max(1e-12);
            vs[3] += pick_cost / worst.max(1e-12);
            srf_vs_o += srf / o.max(1e-12);
            if selection.best == strategy_pick(Strategy::Optimal, &g.truth, goal) {
                hits += 1;
            }
            count += 1;
        }
        if count == 0 {
            continue;
        }
        let n = count as f64;
        rows.push(SelectionRow {
            workload: w.name(),
            goal,
            vs_optimal: vs[0] / n,
            vs_srf: vs[1] / n,
            vs_random: vs[2] / n,
            vs_worst: vs[3] / n,
            srf_vs_optimal: srf_vs_o / n,
            optimal_pick_rate: hits as f64 / n,
            graphs: count,
        });
        all_ratios.avg_vs_optimal += vs[0];
        all_ratios.avg_vs_srf += vs[1];
        all_ratios.avg_vs_random += vs[2];
        all_ratios.avg_vs_worst += vs[3];
        all_hits += hits;
        all_count += count;
    }
    if all_count > 0 {
        let n = all_count as f64;
        all_ratios.avg_vs_optimal /= n;
        all_ratios.avg_vs_srf /= n;
        all_ratios.avg_vs_random /= n;
        all_ratios.avg_vs_worst /= n;
        all_ratios.optimal_pick_rate = all_hits as f64 / n;
    }
    (rows, all_ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{train_ease, EaseConfig};
    use crate::profiling::{profile_processing, profile_quality, GraphInput};
    use ease_graphgen::Scale;

    fn tiny_system() -> (Ease, Vec<GraphInput>) {
        let mut cfg = EaseConfig::at_scale(Scale::Tiny);
        cfg.max_small_graphs = Some(8);
        cfg.max_large_graphs = Some(5);
        cfg.ks = vec![2, 4];
        cfg.partitioners = vec![PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne];
        cfg.workloads = vec![Workload::PageRank { iterations: 3 }, Workload::ConnectedComponents];
        let (ease, _) = train_ease(&cfg);
        let test = GraphInput::from_tests(
            ease_graphgen::realworld::standard_test_set(Scale::Tiny, 77)
                .into_iter()
                .take(6)
                .collect(),
        );
        (ease, test)
    }

    #[test]
    fn selection_rows_are_sane() {
        let (ease, test_inputs) = tiny_system();
        let parts = [PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne];
        let records = profile_processing(
            &test_inputs,
            &parts,
            4,
            &[Workload::PageRank { iterations: 3 }, Workload::ConnectedComponents],
            3,
        );
        let groups = group_truth(&records);
        assert_eq!(groups.len(), 6 * 2);
        for g in &groups {
            assert_eq!(g.truth.len(), 3);
        }
        let (rows, headline) = evaluate_selection(&ease, &groups, 4, OptGoal::EndToEnd);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // S_PS can never beat the oracle or lose to the worst
            assert!(row.vs_optimal >= 1.0 - 1e-9, "{row:?}");
            assert!(row.vs_worst <= 1.0 + 1e-9, "{row:?}");
            assert!(row.srf_vs_optimal >= 1.0 - 1e-9);
            assert!((0.0..=1.0).contains(&row.optimal_pick_rate));
        }
        assert!(headline.avg_vs_optimal >= 1.0 - 1e-9);
        assert!(headline.avg_vs_worst <= 1.0 + 1e-9);
    }

    #[test]
    fn quality_scores_and_heatmap_shapes() {
        let (ease, test_inputs) = tiny_system();
        let parts = [PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne];
        let test_records = profile_quality(&test_inputs, &parts, &[4], 9);
        let scores = quality_test_scores(&ease.quality, &test_records);
        assert_eq!(scores.len(), 5);
        for (t, m, r) in &scores {
            assert!(m.is_finite() && *m >= 0.0, "{t:?}");
            assert!(r.is_finite() && *r >= 0.0);
        }
        let heat = mape_heatmap(&ease.quality, &test_records, QualityTarget::ReplicationFactor);
        assert!(!heat.is_empty());
        for (_, row) in &heat {
            assert_eq!(row.len(), 3); // three partitioners profiled
        }
        let by_type = mape_by_type(&ease.quality, &test_records, QualityTarget::ReplicationFactor);
        assert_eq!(by_type.len(), heat.len());
    }
}
