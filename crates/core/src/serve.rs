//! `ease serve` — a long-running recommendation daemon behind a unix socket.
//!
//! The paper's economics (Sec. I) are *profile once, recommend cheaply
//! forever* — but a one-shot `ease recommend` process pays startup, model
//! deserialization and a cold property cache on every invocation, throwing
//! away exactly the amortization the trained service exists to provide.
//! This module keeps one [`EaseService`] warm in a resident process and
//! serves concurrent clients over a unix-domain socket:
//!
//! * **Protocol** — length-prefixed frames (`[0xEA 0x5E][u32 LE len][payload]`,
//!   capped at [`MAX_FRAME_BYTES`]); payloads are versioned binary
//!   [`Request`]/[`Response`] values encoded with the same `Writer`/`Reader`
//!   codec the model persistence uses. One request per connection.
//! * **Server** — [`serve`] binds the socket and fans accepted connections
//!   out over a bounded pool of worker threads sharing the
//!   `Arc<EaseService>`; the fingerprint-keyed property cache stays warm
//!   across requests and clients. [`Request::Shutdown`] drains the pool
//!   gracefully and removes the socket file.
//! * **Clients** — [`call`] performs one request/response exchange;
//!   `ease client …` and the `--daemon` proxy flags on `ease
//!   recommend`/`ease features` are thin wrappers over it.
//! * **Rendering** — [`render_recommendation`] / [`render_features`] build
//!   the exact text the one-shot CLI prints. The daemon answers with the
//!   same renderer over the same extraction path, so a proxied answer is
//!   *bit-identical* to the one-shot answer by construction (and diffed in
//!   CI and `tests/serve.rs` to keep it that way).
//!
//! Failures never kill the daemon: graph files that do not exist, malformed
//! edge lists, unknown workloads, protocol garbage and mmap'd `.bel` inputs
//! reaching graph-only accessors are all typed [`EaseError`]s routed back to
//! the offending client as [`Response::Error`].

use crate::error::{EaseError, ServeError};
use crate::selector::OptGoal;
use crate::service::EaseService;
use ease_graph::{open_path, GraphProperties, GraphSource, PreparedGraph, PropertyTier};
use ease_ml::persist::{Reader, Writer};
use ease_procsim::Workload;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version byte leading every payload; bumped on any wire-format change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Two magic bytes opening every frame — rejects non-protocol peers before
/// a length is trusted.
pub const FRAME_MAGIC: [u8; 2] = [0xEA, 0x5E];

/// Upper bound on a frame payload. Requests carry paths and responses carry
/// rendered tables — a megabyte is generous, and the cap keeps a garbage
/// length prefix from asking a worker to allocate gigabytes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// How many candidate rows a recommendation renders by default (the CLI's
/// `--top` default).
pub const DEFAULT_TOP: usize = 5;

// ---------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------

/// One client request. Graph inputs travel *by path* (daemon and client
/// share a filesystem by construction — the transport is a unix socket);
/// the server opens text or mmap'd `.bel` inputs through the same
/// format-dispatched [`open_path`] seam as the one-shot CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Recommend a partitioner for the graph at `graph`. `workload` is the
    /// CLI workload name (`pr`, `cc`, …), validated server-side; `k` of
    /// `None` means the service's default partition count. `cwd` is the
    /// *client's* working directory: the server resolves a relative
    /// `graph` against it (daemon and client share a filesystem but not a
    /// cwd), while the answer always displays `graph` as the client wrote
    /// it — keeping daemon output bit-identical to the one-shot CLI.
    Recommend {
        graph: String,
        workload: String,
        k: Option<usize>,
        goal: OptGoal,
        top: usize,
        cwd: Option<String>,
    },
    /// Extract and render the feature vector of the graph at `graph`
    /// (`cwd` as in [`Request::Recommend`]).
    Features { graph: String, tier: PropertyTier, cwd: Option<String> },
    /// Snapshot the warm property cache and serving counters.
    CacheStats,
    /// Stop accepting connections, drain in-flight work, remove the socket.
    Shutdown,
}

/// Observability snapshot answered to [`Request::CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub len: usize,
    pub capacity: usize,
    /// Requests answered so far (all kinds, including this one).
    pub requests_served: u64,
}

impl ServeStats {
    /// The `ease client cache-stats` rendering.
    pub fn render(&self) -> String {
        format!(
            "property cache: hits={} misses={} evictions={} len={}/{}\nrequests served: {}\n",
            self.hits, self.misses, self.evictions, self.len, self.capacity, self.requests_served
        )
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Liveness answer carrying the server's protocol version.
    Pong { version: u8 },
    /// Rendered answer text, printed verbatim by clients — bit-identical
    /// to the one-shot CLI output for the same query.
    Answer(String),
    /// Cache and serving counters.
    CacheStats(ServeStats),
    /// The request failed; the message is the rendered [`EaseError`].
    Error(String),
    /// Shutdown acknowledged; the daemon drains and exits.
    ShuttingDown,
}

// ---------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------

fn proto_err(msg: impl Into<String>) -> EaseError {
    ServeError::Protocol(msg.into()).into()
}

fn goal_tag(goal: OptGoal) -> u8 {
    match goal {
        OptGoal::EndToEnd => 0,
        OptGoal::ProcessingOnly => 1,
    }
}

fn goal_from_tag(tag: u8) -> Result<OptGoal, EaseError> {
    match tag {
        0 => Ok(OptGoal::EndToEnd),
        1 => Ok(OptGoal::ProcessingOnly),
        other => Err(proto_err(format!("unknown goal tag {other}"))),
    }
}

fn tier_tag(tier: PropertyTier) -> u8 {
    match tier {
        PropertyTier::Simple => 0,
        PropertyTier::Basic => 1,
        PropertyTier::Advanced => 2,
    }
}

fn tier_from_tag(tag: u8) -> Result<PropertyTier, EaseError> {
    match tag {
        0 => Ok(PropertyTier::Simple),
        1 => Ok(PropertyTier::Basic),
        2 => Ok(PropertyTier::Advanced),
        other => Err(proto_err(format!("unknown tier tag {other}"))),
    }
}

fn put_opt_str(w: &mut Writer, v: &Option<String>) {
    match v {
        Some(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        None => w.put_u8(0),
    }
}

fn take_opt_str(r: &mut Reader) -> Result<Option<String>, ease_ml::PersistError> {
    match r.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.take_str()?)),
        other => Err(ease_ml::PersistError::Corrupt(format!("unknown option tag {other}"))),
    }
}

/// Resolve a request's graph path: relative paths are joined to the
/// *client's* working directory when it travelled with the request —
/// the daemon's own cwd is an accident of where it was launched and must
/// never influence which file a client's query answers for.
pub fn resolve_graph_path(graph: &str, cwd: Option<&str>) -> PathBuf {
    let path = Path::new(graph);
    match cwd {
        Some(cwd) if path.is_relative() => Path::new(cwd).join(path),
        _ => path.to_path_buf(),
    }
}

/// Serialize a request payload (framing is separate; see [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(PROTOCOL_VERSION);
    match req {
        Request::Ping => w.put_u8(0),
        Request::Recommend { graph, workload, k, goal, top, cwd } => {
            w.put_u8(1);
            w.put_str(graph);
            w.put_str(workload);
            w.put_opt_usize(*k);
            w.put_u8(goal_tag(*goal));
            w.put_usize(*top);
            put_opt_str(&mut w, cwd);
        }
        Request::Features { graph, tier, cwd } => {
            w.put_u8(2);
            w.put_str(graph);
            w.put_u8(tier_tag(*tier));
            put_opt_str(&mut w, cwd);
        }
        Request::CacheStats => w.put_u8(3),
        Request::Shutdown => w.put_u8(4),
    }
    w.into_bytes()
}

/// Deserialize a request payload. Every malformation is a typed
/// [`ServeError::Protocol`] — never a panic in a server worker.
pub fn decode_request(bytes: &[u8]) -> Result<Request, EaseError> {
    let mut r = Reader::new(bytes);
    let p = |e: ease_ml::PersistError| proto_err(format!("truncated request: {e}"));
    let version = r.take_u8().map_err(p)?;
    if version != PROTOCOL_VERSION {
        return Err(proto_err(format!(
            "protocol version skew: peer speaks v{version}, this build v{PROTOCOL_VERSION}"
        )));
    }
    let req = match r.take_u8().map_err(p)? {
        0 => Request::Ping,
        1 => Request::Recommend {
            graph: r.take_str().map_err(p)?,
            workload: r.take_str().map_err(p)?,
            k: r.take_opt_usize().map_err(p)?,
            goal: goal_from_tag(r.take_u8().map_err(p)?)?,
            top: r.take_usize().map_err(p)?,
            cwd: take_opt_str(&mut r).map_err(p)?,
        },
        2 => Request::Features {
            graph: r.take_str().map_err(p)?,
            tier: tier_from_tag(r.take_u8().map_err(p)?)?,
            cwd: take_opt_str(&mut r).map_err(p)?,
        },
        3 => Request::CacheStats,
        4 => Request::Shutdown,
        other => return Err(proto_err(format!("unknown request tag {other}"))),
    };
    if r.remaining() != 0 {
        return Err(proto_err(format!("{} trailing bytes after request", r.remaining())));
    }
    Ok(req)
}

/// Serialize a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(PROTOCOL_VERSION);
    match resp {
        Response::Pong { version } => {
            w.put_u8(0);
            w.put_u8(*version);
        }
        Response::Answer(text) => {
            w.put_u8(1);
            w.put_str(text);
        }
        Response::CacheStats(s) => {
            w.put_u8(2);
            w.put_u64(s.hits);
            w.put_u64(s.misses);
            w.put_u64(s.evictions);
            w.put_usize(s.len);
            w.put_usize(s.capacity);
            w.put_u64(s.requests_served);
        }
        Response::Error(msg) => {
            w.put_u8(3);
            w.put_str(msg);
        }
        Response::ShuttingDown => w.put_u8(4),
    }
    w.into_bytes()
}

/// Deserialize a response payload.
pub fn decode_response(bytes: &[u8]) -> Result<Response, EaseError> {
    let mut r = Reader::new(bytes);
    let p = |e: ease_ml::PersistError| proto_err(format!("truncated response: {e}"));
    let version = r.take_u8().map_err(p)?;
    if version != PROTOCOL_VERSION {
        return Err(proto_err(format!(
            "protocol version skew: peer speaks v{version}, this build v{PROTOCOL_VERSION}"
        )));
    }
    let resp = match r.take_u8().map_err(p)? {
        0 => Response::Pong { version: r.take_u8().map_err(p)? },
        1 => Response::Answer(r.take_str().map_err(p)?),
        2 => Response::CacheStats(ServeStats {
            hits: r.take_u64().map_err(p)?,
            misses: r.take_u64().map_err(p)?,
            evictions: r.take_u64().map_err(p)?,
            len: r.take_usize().map_err(p)?,
            capacity: r.take_usize().map_err(p)?,
            requests_served: r.take_u64().map_err(p)?,
        }),
        3 => Response::Error(r.take_str().map_err(p)?),
        4 => Response::ShuttingDown,
        other => return Err(proto_err(format!("unknown response tag {other}"))),
    };
    if r.remaining() != 0 {
        return Err(proto_err(format!("{} trailing bytes after response", r.remaining())));
    }
    Ok(resp)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one `[magic][u32 LE len][payload]` frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), EaseError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(proto_err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            payload.len()
        )));
    }
    w.write_all(&FRAME_MAGIC)?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, validating magic and the length cap. A peer that closes
/// before a complete frame is a typed [`ServeError::Disconnected`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, EaseError> {
    let mut head = [0u8; 6];
    read_exact_framed(r, &mut head)?;
    if head[..2] != FRAME_MAGIC {
        return Err(proto_err(format!(
            "bad frame magic {:02x}{:02x} (expected {:02x}{:02x})",
            head[0], head[1], FRAME_MAGIC[0], FRAME_MAGIC[1]
        )));
    }
    let len = u32::from_le_bytes([head[2], head[3], head[4], head[5]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(proto_err(format!(
            "declared frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_framed(r, &mut payload)?;
    Ok(payload)
}

fn read_exact_framed(r: &mut impl Read, buf: &mut [u8]) -> Result<(), EaseError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::Disconnected.into()
        } else {
            EaseError::Io(e)
        }
    })
}

// ---------------------------------------------------------------------
// Rendering — the single source of truth for CLI-visible answer text
// ---------------------------------------------------------------------

/// Render a recommendation answer exactly as the one-shot
/// `ease recommend` prints it. Both the one-shot CLI and the daemon call
/// this function, which is what makes `--daemon` answers bit-identical to
/// per-process answers: same extraction path (the service's
/// fingerprint-keyed property cache over a [`PreparedGraph`]), same
/// formatting, same bytes.
pub fn render_recommendation(
    service: &EaseService,
    display_path: &str,
    source: &dyn GraphSource,
    workload: Workload,
    k: usize,
    goal: OptGoal,
    top: usize,
) -> Result<String, EaseError> {
    let n = source.num_vertices();
    let m = source.edge_count();
    let mut out = String::new();
    let w = &mut out;
    writeln!(
        w,
        "graph {display_path}: |V|={n} |E|={m} mean-degree {:.2}",
        if n > 0 { 2.0 * m as f64 / n as f64 } else { 0.0 }
    )
    .expect("write to String");
    let prepared = PreparedGraph::of_source(source);
    let selection = service.recommend_prepared_with_k(&prepared, workload, k, goal)?;
    writeln!(
        w,
        "recommended partitioner for {} (k={k}, goal {}): {}",
        workload.label(),
        selection.goal.name(),
        selection.best.name()
    )
    .expect("write to String");
    let mut ranked = selection.candidates;
    // total_cmp: non-finite predictions must not panic a daemon worker
    ranked.sort_by(|a, b| {
        let cost = |c: &crate::selector::PredictedCosts| match goal {
            OptGoal::EndToEnd => c.end_to_end_secs,
            OptGoal::ProcessingOnly => c.processing_secs,
        };
        cost(a).total_cmp(&cost(b))
    });
    writeln!(
        w,
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "candidate", "pred-part", "pred-proc", "pred-e2e", "rf"
    )
    .expect("write to String");
    for c in ranked.iter().take(top) {
        writeln!(
            w,
            "{:<10} {:>11.4}s {:>11.4}s {:>11.4}s {:>8.2}",
            c.partitioner.name(),
            c.partitioning_secs,
            c.processing_secs,
            c.end_to_end_secs,
            c.quality.replication_factor
        )
        .expect("write to String");
    }
    Ok(out)
}

/// Render a feature-extraction answer exactly as the one-shot
/// `ease features` prints it. The final line carries wall-clock extraction
/// timings (cold vs prepared) and is the only run-dependent line — CI and
/// tests strip it before diffing daemon output against one-shot output.
pub fn render_features(
    display_path: &str,
    source: &dyn GraphSource,
    tier: PropertyTier,
) -> Result<String, EaseError> {
    // cold: throwaway context per extraction (what a naive caller pays)
    let t = std::time::Instant::now();
    let cold = PreparedGraph::of_source(source).properties(tier);
    let cold_secs = t.elapsed().as_secs_f64();
    // prepared: one shared context; the first extraction builds the caches,
    // the second shows the steady-state cost of a warmed context
    let prepared = PreparedGraph::of_source(source);
    let t = std::time::Instant::now();
    let first = GraphProperties::compute_prepared(&prepared, tier);
    let first_secs = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let warm = GraphProperties::compute_prepared(&prepared, tier);
    let warm_secs = t.elapsed().as_secs_f64();
    // extraction determinism is locked by the graph_source/prepared_graph
    // suites; a debug_assert keeps test builds honest without giving the
    // daemon a panic path
    debug_assert_eq!(cold, first, "prepared extraction must match the cold path");
    debug_assert_eq!(first, warm);

    let mut out = String::new();
    let w = &mut out;
    writeln!(
        w,
        "graph {display_path} (|V|={} |E|={}): {} tier",
        source.num_vertices(),
        source.edge_count(),
        tier.name()
    )
    .expect("write to String");
    writeln!(w, "{:<20} {:>18}", "feature", "value").expect("write to String");
    for (name, value) in GraphProperties::feature_names(tier).iter().zip(cold.feature_vector(tier))
    {
        writeln!(w, "{name:<20} {value:>18.6}").expect("write to String");
    }
    writeln!(w, "fingerprint          0x{:016x}", prepared.fingerprint()).expect("write to String");
    let speedup = if warm_secs > 0.0 { cold_secs / warm_secs } else { f64::INFINITY };
    writeln!(
        w,
        "extraction: cold {:.3} ms | prepared first {:.3} ms | prepared warm {:.3} ms ({speedup:.0}x)",
        cold_secs * 1e3,
        first_secs * 1e3,
        warm_secs * 1e3,
    )
    .expect("write to String");
    Ok(out)
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Per-connection socket read/write timeout default (see
/// [`ServeConfig::io_timeout`]).
pub const DEFAULT_IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Server configuration: the socket path and the worker-pool bound.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub socket: PathBuf,
    /// Concurrent request handlers (≥ 1; clamped to ≥ 2 internally so a
    /// shutdown request can always be processed while a long extraction is
    /// in flight).
    pub workers: usize,
    /// Read/write timeout applied to every accepted connection. A peer
    /// that connects and then stalls mid-frame would otherwise pin a
    /// worker thread forever — enough such peers would exhaust the pool
    /// and make even graceful shutdown hang. `None` disables (tests only).
    pub io_timeout: Option<std::time::Duration>,
}

impl ServeConfig {
    /// Default worker count: one per available core, at least 2 (see
    /// [`ServeConfig::workers`]), at most 8 — selection is CPU-bound, so
    /// more workers than cores only adds contention.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2).clamp(2, 8)
    }

    pub fn at(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            workers: Self::default_workers(),
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
        }
    }

    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub fn io_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }
}

/// Final serving counters returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered over the daemon's lifetime (all request kinds).
    pub requests_served: u64,
}

#[cfg(unix)]
pub use unix_server::{call, serve, ServerHandle};

#[cfg(unix)]
mod unix_server {
    use super::*;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{mpsc, Mutex};
    use std::thread::JoinHandle;

    struct Shared {
        service: Arc<EaseService>,
        socket: PathBuf,
        shutdown: AtomicBool,
        served: AtomicU64,
        io_timeout: Option<std::time::Duration>,
    }

    /// A running daemon: the accept loop plus its bounded worker pool.
    /// Keep the handle and [`ServerHandle::join`] it; dropping the handle
    /// leaves the threads serving detached.
    pub struct ServerHandle {
        shared: Arc<Shared>,
        accept: JoinHandle<()>,
        workers: Vec<JoinHandle<()>>,
    }

    impl ServerHandle {
        pub fn socket_path(&self) -> &Path {
            &self.shared.socket
        }

        /// Requests answered so far.
        pub fn requests_served(&self) -> u64 {
            self.shared.served.load(Ordering::Relaxed)
        }

        /// Whether a shutdown has been requested (by a client or locally).
        pub fn is_shutting_down(&self) -> bool {
            self.shared.shutdown.load(Ordering::Relaxed)
        }

        /// Request shutdown from the owning process (equivalent to a client
        /// sending [`Request::Shutdown`]).
        pub fn trigger_shutdown(&self) {
            request_shutdown(&self.shared);
        }

        /// Wait for the daemon to drain (a shutdown must have been
        /// requested, or this blocks until one is), then remove the socket
        /// file and return the final counters.
        pub fn join(self) -> Result<ServeSummary, EaseError> {
            let mut panicked = false;
            panicked |= self.accept.join().is_err();
            for worker in self.workers {
                panicked |= worker.join().is_err();
            }
            std::fs::remove_file(&self.shared.socket).ok();
            if panicked {
                return Err(ServeError::Protocol("a server thread panicked".into()).into());
            }
            Ok(ServeSummary { requests_served: self.shared.served.load(Ordering::Relaxed) })
        }
    }

    /// Flag the shutdown and poke the accept loop awake with a throwaway
    /// connection (idempotent; errors ignored — the listener may already
    /// be gone).
    fn request_shutdown(shared: &Shared) {
        shared.shutdown.store(true, Ordering::SeqCst);
        UnixStream::connect(&shared.socket).ok();
    }

    /// Bind `config.socket` and start serving `service`. Returns once the
    /// daemon is accepting (a client connecting after this call will be
    /// served). A stale socket file from a dead daemon is replaced; a
    /// *live* daemon on the same path is a typed [`ServeError::Bind`].
    pub fn serve(
        service: Arc<EaseService>,
        config: ServeConfig,
    ) -> Result<ServerHandle, EaseError> {
        let socket = config.socket.clone();
        if socket.exists() {
            if UnixStream::connect(&socket).is_ok() {
                return Err(ServeError::Bind {
                    socket: socket.display().to_string(),
                    message: "another daemon is already serving this socket".into(),
                }
                .into());
            }
            std::fs::remove_file(&socket).map_err(|e| ServeError::Bind {
                socket: socket.display().to_string(),
                message: format!("cannot replace stale socket file: {e}"),
            })?;
        }
        let listener = UnixListener::bind(&socket).map_err(|e| ServeError::Bind {
            socket: socket.display().to_string(),
            message: e.to_string(),
        })?;
        let workers = config.workers.max(2);
        let shared = Arc::new(Shared {
            service,
            socket,
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            io_timeout: config.io_timeout,
        });
        // Bounded hand-off: accept blocks once every worker is busy and the
        // small buffer is full, so a flood of clients queues in the listen
        // backlog instead of ballooning daemon memory.
        let (tx, rx) = mpsc::sync_channel::<UnixStream>(workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            worker_handles.push(std::thread::spawn(move || loop {
                let next = rx.lock().expect("worker queue lock").recv();
                match next {
                    Ok(stream) => handle_connection(stream, &shared),
                    Err(_) => break, // accept loop gone: drained, exit
                }
            }));
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(stream) => stream,
                    Err(_) => {
                        // accept can fail persistently (fd exhaustion:
                        // EMFILE/ENFILE); back off briefly instead of
                        // spinning a core until descriptors free up
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    }
                };
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // dropping `tx` (and the listener) lets workers drain and exit
        });
        Ok(ServerHandle { shared, accept, workers: worker_handles })
    }

    /// One connection: read a request frame, answer it, close. Protocol
    /// violations get a best-effort [`Response::Error`]; nothing in here
    /// can panic the worker on user input, and the I/O timeout guarantees
    /// a stalled peer cannot pin the worker (or block shutdown) forever.
    fn handle_connection(mut stream: UnixStream, shared: &Shared) {
        stream.set_read_timeout(shared.io_timeout).ok();
        stream.set_write_timeout(shared.io_timeout).ok();
        let response = match read_frame(&mut stream).and_then(|bytes| decode_request(&bytes)) {
            Ok(request) => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                answer(request, shared)
            }
            // a bare connect/close (e.g. the shutdown wake-up, or a port
            // probe) is not worth an error frame
            Err(EaseError::Serve(ServeError::Disconnected)) => return,
            Err(e) => Response::Error(e.to_string()),
        };
        let payload = encode_response(&response);
        // the peer may already be gone; that is its problem, not the pool's
        write_frame(&mut stream, &payload).ok();
    }

    fn answer(request: Request, shared: &Shared) -> Response {
        match request {
            Request::Ping => Response::Pong { version: PROTOCOL_VERSION },
            Request::Recommend { graph, workload, k, goal, top, cwd } => {
                match recommend_answer(&shared.service, &graph, &workload, k, goal, top, &cwd) {
                    Ok(text) => Response::Answer(text),
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Features { graph, tier, cwd } => match features_answer(&graph, tier, &cwd) {
                Ok(text) => Response::Answer(text),
                Err(e) => Response::Error(e.to_string()),
            },
            Request::CacheStats => {
                let cache = shared.service.property_cache_stats();
                Response::CacheStats(ServeStats {
                    hits: cache.hits,
                    misses: cache.misses,
                    evictions: cache.evictions,
                    len: cache.len,
                    capacity: cache.capacity,
                    requests_served: shared.served.load(Ordering::Relaxed),
                })
            }
            Request::Shutdown => {
                request_shutdown(shared);
                Response::ShuttingDown
            }
        }
    }

    fn recommend_answer(
        service: &EaseService,
        graph: &str,
        workload: &str,
        k: Option<usize>,
        goal: OptGoal,
        top: usize,
        cwd: &Option<String>,
    ) -> Result<String, EaseError> {
        let workload = Workload::from_name(workload)
            .ok_or_else(|| EaseError::InvalidConfig(format!("unknown workload `{workload}`")))?;
        // open the client-resolved path, display the path as the client
        // wrote it (one-shot answer parity)
        let source = open_path(&resolve_graph_path(graph, cwd.as_deref()))?;
        let k = k.unwrap_or(service.meta().default_k);
        render_recommendation(service, graph, source.as_ref(), workload, k, goal, top)
    }

    fn features_answer(
        graph: &str,
        tier: PropertyTier,
        cwd: &Option<String>,
    ) -> Result<String, EaseError> {
        let source = open_path(&resolve_graph_path(graph, cwd.as_deref()))?;
        render_features(graph, source.as_ref(), tier)
    }

    /// One request/response exchange with a daemon at `socket`.
    pub fn call(socket: &Path, request: &Request) -> Result<Response, EaseError> {
        let mut stream = UnixStream::connect(socket)?;
        write_frame(&mut stream, &encode_request(request))?;
        stream.shutdown(std::net::Shutdown::Write).ok();
        let payload = read_frame(&mut stream)?;
        decode_response(&payload)
    }
}

#[cfg(not(unix))]
mod portable_stubs {
    use super::*;

    /// Handle stub on platforms without unix sockets. [`serve`] always
    /// fails there, so no value of this type can ever exist — the
    /// `Infallible` field makes that a type-level fact, and every method
    /// body is the empty match. Callers (`ease serve`, `bench_pr5`,
    /// `tests/serve.rs`) compile unchanged on every platform.
    pub struct ServerHandle {
        never: std::convert::Infallible,
    }

    impl ServerHandle {
        pub fn socket_path(&self) -> &Path {
            match self.never {}
        }

        pub fn requests_served(&self) -> u64 {
            match self.never {}
        }

        pub fn is_shutting_down(&self) -> bool {
            match self.never {}
        }

        pub fn trigger_shutdown(&self) {
            match self.never {}
        }

        pub fn join(self) -> Result<ServeSummary, EaseError> {
            match self.never {}
        }
    }

    /// Unix-domain sockets are unavailable on this platform; the protocol
    /// codec above still compiles and round-trips for tests.
    pub fn serve(
        _service: Arc<EaseService>,
        _config: ServeConfig,
    ) -> Result<ServerHandle, EaseError> {
        Err(ServeError::Unsupported.into())
    }

    pub fn call(_socket: &Path, _request: &Request) -> Result<Response, EaseError> {
        Err(ServeError::Unsupported.into())
    }
}

#[cfg(not(unix))]
pub use portable_stubs::{call, serve, ServerHandle};

/// Unwrap an [`Response::Answer`], mapping a server-side
/// [`Response::Error`] to the typed [`ServeError::Remote`] (clients print
/// it exactly as the one-shot CLI prints the same failure).
pub fn expect_answer(response: Response) -> Result<String, EaseError> {
    match response {
        Response::Answer(text) => Ok(text),
        Response::Error(msg) => Err(ServeError::Remote(msg).into()),
        other => Err(proto_err(format!("expected an answer, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn request_codec_round_trips_every_variant() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Recommend {
            graph: "/tmp/graph.bel".into(),
            workload: "pr".into(),
            k: Some(8),
            goal: OptGoal::ProcessingOnly,
            top: 11,
            cwd: None,
        });
        round_trip_request(Request::Recommend {
            graph: "rel/path with spaces.txt".into(),
            workload: "cc".into(),
            k: None,
            goal: OptGoal::EndToEnd,
            top: DEFAULT_TOP,
            cwd: Some("/home/someone".into()),
        });
        round_trip_request(Request::Features {
            graph: "g.txt".into(),
            tier: PropertyTier::Basic,
            cwd: Some("/srv".into()),
        });
        round_trip_request(Request::CacheStats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn graph_paths_resolve_against_the_client_cwd() {
        // relative path + client cwd: the daemon must answer for the
        // client's file, wherever the daemon itself was started
        assert_eq!(resolve_graph_path("data.txt", Some("/home/u")), Path::new("/home/u/data.txt"));
        assert_eq!(resolve_graph_path("a/b.bel", Some("/srv")), Path::new("/srv/a/b.bel"));
        // absolute paths ignore the cwd; a missing cwd resolves as-is
        assert_eq!(resolve_graph_path("/abs/g.txt", Some("/srv")), Path::new("/abs/g.txt"));
        assert_eq!(resolve_graph_path("rel.txt", None), Path::new("rel.txt"));
    }

    #[test]
    fn response_codec_round_trips_every_variant() {
        round_trip_response(Response::Pong { version: PROTOCOL_VERSION });
        round_trip_response(Response::Answer("two\nlines\n".into()));
        round_trip_response(Response::CacheStats(ServeStats {
            hits: 10,
            misses: 3,
            evictions: 1,
            len: 2,
            capacity: 64,
            requests_served: 14,
        }));
        round_trip_response(Response::Error("no model trained for workload `x`".into()));
        round_trip_response(Response::ShuttingDown);
    }

    #[test]
    fn malformed_payloads_are_typed_protocol_errors() {
        let is_protocol = |e: EaseError| {
            assert!(
                matches!(e, EaseError::Serve(ServeError::Protocol(_))),
                "expected a protocol error, got {e:?}"
            );
        };
        // empty, version skew, unknown tag, truncation, trailing bytes
        is_protocol(decode_request(&[]).unwrap_err());
        is_protocol(decode_request(&[PROTOCOL_VERSION + 1, 0]).unwrap_err());
        is_protocol(decode_request(&[PROTOCOL_VERSION, 99]).unwrap_err());
        let mut truncated = encode_request(&Request::Features {
            graph: "abcdef.txt".into(),
            tier: PropertyTier::Advanced,
            cwd: None,
        });
        truncated.truncate(truncated.len() - 3);
        is_protocol(decode_request(&truncated).unwrap_err());
        let mut trailing = encode_request(&Request::Ping);
        trailing.push(0);
        is_protocol(decode_request(&trailing).unwrap_err());
        is_protocol(decode_response(&[PROTOCOL_VERSION, 77]).unwrap_err());
    }

    #[test]
    fn frames_round_trip_and_reject_garbage() {
        let payload = encode_request(&Request::CacheStats);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(&wire[..2], &FRAME_MAGIC);
        let back = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, payload);
        // wrong magic
        let mut bad = wire.clone();
        bad[0] = b'G';
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Protocol(_))
        ));
        // a length prefix past the cap must be refused before allocation
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&FRAME_MAGIC);
        oversized.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut oversized.as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Protocol(_))
        ));
        // peer vanishing mid-frame is Disconnected, not a parse panic
        assert!(matches!(
            read_frame(&mut wire[..3].to_vec().as_slice()).unwrap_err(),
            EaseError::Serve(ServeError::Disconnected)
        ));
        // writers refuse to emit an oversized frame
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(write_frame(&mut Vec::new(), &huge).is_err());
    }

    #[test]
    fn expect_answer_maps_remote_errors() {
        assert_eq!(expect_answer(Response::Answer("ok".into())).unwrap(), "ok");
        match expect_answer(Response::Error("boom".into())).unwrap_err() {
            EaseError::Serve(ServeError::Remote(msg)) => assert_eq!(msg, "boom"),
            other => panic!("expected Remote, got {other:?}"),
        }
        assert!(expect_answer(Response::ShuttingDown).is_err());
    }

    #[test]
    fn stats_render_is_stable() {
        let s = ServeStats {
            hits: 5,
            misses: 2,
            evictions: 0,
            len: 2,
            capacity: 64,
            requests_served: 9,
        };
        let text = s.render();
        assert!(text.contains("hits=5 misses=2 evictions=0 len=2/64"));
        assert!(text.contains("requests served: 9"));
    }
}
