//! Criterion micro-benchmarks: partitioning throughput of all 11
//! partitioners, plus two ablations called out in DESIGN.md — HDRF's λ
//! balance weight and NE's seed-driven vertex-balance instability (the
//! latter measured as quality spread, reported via bench output).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_partition::{hdrf::Hdrf, Partitioner, PartitionerId, QualityMetrics};
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let graph = Rmat::new(RMAT_COMBOS[6], 1 << 12, 20_000, 7).generate();
    let k = 32;
    let mut group = c.benchmark_group("partition_20k_edges_k32");
    group.sample_size(10);
    for id in PartitionerId::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(id.name()), &id, |b, &id| {
            let p = id.build(1);
            b.iter(|| black_box(p.partition(&graph, k)));
        });
    }
    group.finish();
}

fn bench_hdrf_lambda_ablation(c: &mut Criterion) {
    let graph = Rmat::new(RMAT_COMBOS[4], 1 << 12, 20_000, 9).generate();
    let mut group = c.benchmark_group("hdrf_lambda_ablation");
    group.sample_size(10);
    for lambda in [0.1, 1.1, 5.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("lambda_{lambda}")),
            &lambda,
            |b, &lambda| {
                let p = Hdrf::with_lambda(lambda, 3);
                b.iter(|| black_box(p.partition(&graph, 16)));
            },
        );
    }
    group.finish();
    // quality side of the ablation (printed once, not timed)
    for lambda in [0.1, 1.1, 5.0] {
        let p = Hdrf::with_lambda(lambda, 3).partition(&graph, 16);
        let m = QualityMetrics::compute(&graph, &p);
        eprintln!(
            "hdrf lambda={lambda}: rf={:.3} edge_balance={:.3}",
            m.replication_factor, m.edge_balance
        );
    }
}

fn bench_ne_seed_instability(c: &mut Criterion) {
    let graph = Rmat::new(RMAT_COMBOS[6], 1 << 12, 16_000, 5).generate();
    c.bench_function("ne_partition_16k_edges_k8", |b| {
        let p = PartitionerId::Ne.build(1);
        b.iter(|| black_box(p.partition(&graph, 8)));
    });
    // report the paper's instability observation alongside the timing
    let balances: Vec<f64> = (0..5)
        .map(|s| {
            let p = PartitionerId::Ne.build(s).partition(&graph, 8);
            QualityMetrics::compute(&graph, &p).vertex_balance
        })
        .collect();
    let min = balances.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = balances.iter().cloned().fold(0.0, f64::max);
    eprintln!("ne vertex-balance across 5 seeds: min={min:.3} max={max:.3} ratio={:.2}", max / min);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_partitioners, bench_hdrf_lambda_ablation, bench_ne_seed_instability
}
criterion_main!(benches);
