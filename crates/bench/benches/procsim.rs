//! Criterion benchmarks for the distributed processing engine: workload
//! execution cost over an HDRF-partitioned R-MAT graph, and the placement
//! build itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_partition::PartitionerId;
use ease_procsim::{ClusterSpec, DistributedGraph, Workload};
use std::hint::black_box;

fn setup() -> DistributedGraph {
    let graph = Rmat::new(RMAT_COMBOS[5], 1 << 12, 24_000, 13).generate();
    let partition = PartitionerId::Hdrf.build(1).partition(&graph, 4);
    DistributedGraph::build(&graph, &partition)
}

fn bench_workloads(c: &mut Criterion) {
    let dg = setup();
    let cluster = ClusterSpec::new(4);
    let mut group = c.benchmark_group("procsim_24k_edges_k4");
    group.sample_size(10);
    for w in Workload::all_training() {
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), &w, |b, w| {
            b.iter(|| black_box(w.execute(&dg, &cluster)));
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let graph = Rmat::new(RMAT_COMBOS[5], 1 << 12, 24_000, 13).generate();
    let partition = PartitionerId::Hdrf.build(1).partition(&graph, 4);
    c.bench_function("distributed_graph_build_24k", |b| {
        b.iter(|| black_box(DistributedGraph::build(&graph, &partition)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_workloads, bench_placement
}
criterion_main!(benches);
