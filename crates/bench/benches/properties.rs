//! Criterion benchmarks for graph property extraction — the inference-time
//! cost EASE pays before selection (the paper argues this must stay far
//! below partitioning cost, unlike GNN embeddings; Sec. IV-E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ease_graph::{DegreeTable, GraphProperties, PreparedGraph, PropertyTier};
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use std::hint::black_box;

fn bench_property_tiers(c: &mut Criterion) {
    let graph = Rmat::new(RMAT_COMBOS[5], 1 << 13, 40_000, 11).generate();
    let mut group = c.benchmark_group("properties_40k_edges");
    group.sample_size(10);
    for tier in PropertyTier::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(tier.name()), &tier, |b, &tier| {
            b.iter(|| black_box(GraphProperties::compute(&graph, tier)));
        });
    }
    group.finish();
}

fn bench_prepared_extraction(c: &mut Criterion) {
    let graph = Rmat::new(RMAT_COMBOS[5], 1 << 13, 40_000, 11).generate();
    let prepared = PreparedGraph::of(&graph);
    prepared.properties(PropertyTier::Advanced); // warm the context
    c.bench_function("properties_40k_edges/advanced_prepared_warm", |b| {
        b.iter(|| black_box(prepared.properties(PropertyTier::Advanced)));
    });
}

fn bench_degree_table(c: &mut Criterion) {
    let graph = Rmat::new(RMAT_COMBOS[2], 1 << 13, 40_000, 3).generate();
    c.bench_function("degree_table_40k_edges", |b| {
        b.iter(|| black_box(DegreeTable::compute(&graph)));
    });
}

fn bench_triangles(c: &mut Criterion) {
    let graph = Rmat::new(RMAT_COMBOS[0], 1 << 12, 24_000, 5).generate();
    c.bench_function("triangle_stats_24k_edges", |b| {
        b.iter(|| black_box(ease_graph::triangles::triangle_stats(&graph)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_property_tiers, bench_prepared_extraction, bench_degree_table, bench_triangles
}
criterion_main!(benches);
