//! Criterion benchmarks for the six regression families: fit + predict
//! cost on an EASE-shaped dataset (8 numeric features + 11-way one-hot,
//! like the quality-predictor rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ease_ml::{Matrix, ModelConfig};
use std::hint::black_box;

fn synthetic_dataset(rows: usize) -> (Matrix, Vec<f64>) {
    let mut state = 0x9E37u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) as f64 / u64::MAX as f64
    };
    let mut data = Vec::with_capacity(rows);
    let mut y = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row: Vec<f64> = (0..8).map(|_| next()).collect();
        let hot = (next() * 11.0) as usize % 11;
        for i in 0..11 {
            row.push(if i == hot { 1.0 } else { 0.0 });
        }
        y.push(row[0] * 3.0 + (row[1] * 6.0).sin() + hot as f64 * 0.2);
        data.push(row);
    }
    (Matrix::from_rows(&data), y)
}

fn bench_fit(c: &mut Criterion) {
    let (x, y) = synthetic_dataset(2_000);
    let configs = [
        ModelConfig::Poly { degree: 2, alpha: 1e-3 },
        ModelConfig::Svr { c: 10.0, epsilon: 0.01, gamma: 0.5 },
        ModelConfig::Forest { n_trees: 60, max_depth: 14, feature_fraction: 0.6 },
        ModelConfig::Xgb { n_estimators: 100, learning_rate: 0.1, max_depth: 5, lambda: 1.0 },
        ModelConfig::Knn { k: 5, distance_weighted: true },
        ModelConfig::Mlp { hidden: vec![32, 16], epochs: 20, learning_rate: 1e-3 },
    ];
    let mut group = c.benchmark_group("model_fit_2000rows");
    group.sample_size(10);
    for cfg in &configs {
        group.bench_with_input(BenchmarkId::from_parameter(cfg.kind().name()), cfg, |b, cfg| {
            b.iter(|| {
                let mut m = cfg.build();
                m.fit(&x, &y);
                black_box(m.predict_row(x.row(0)))
            });
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = synthetic_dataset(2_000);
    let mut group = c.benchmark_group("model_predict_row");
    group.sample_size(20);
    for cfg in [
        ModelConfig::Forest { n_trees: 60, max_depth: 14, feature_fraction: 0.6 },
        ModelConfig::Xgb { n_estimators: 100, learning_rate: 0.1, max_depth: 5, lambda: 1.0 },
        ModelConfig::Knn { k: 5, distance_weighted: true },
    ] {
        let mut m = cfg.build();
        m.fit(&x, &y);
        group.bench_with_input(BenchmarkId::from_parameter(cfg.kind().name()), &m, |b, m| {
            b.iter(|| black_box(m.predict_row(x.row(7))));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fit, bench_predict
}
criterion_main!(benches);
