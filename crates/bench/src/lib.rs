//! Shared scaffolding for the experiment binaries: environment-driven scale
//! selection, result-directory handling, and common profiling shortcuts.
//!
//! Every binary honours two environment variables:
//!
//! * `EASE_SCALE` — `tiny` | `small` (default) | `medium`,
//! * `EASE_SEED`  — experiment seed (default 42).
//!
//! Outputs go to stdout (paper-style tables) and `results/*.csv`.

use ease::pipeline::EaseConfig;
use ease_graphgen::Scale;
use std::path::PathBuf;

/// Scale from `EASE_SCALE` (default: Small).
pub fn scale_from_env() -> Scale {
    match std::env::var("EASE_SCALE") {
        Ok(v) => Scale::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown EASE_SCALE={v}, using small");
            Scale::Small
        }),
        Err(_) => Scale::Small,
    }
}

/// Seed from `EASE_SEED` (default 42).
pub fn seed_from_env() -> u64 {
    std::env::var("EASE_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42)
}

/// Pipeline config honouring the environment.
pub fn config_from_env() -> EaseConfig {
    let mut cfg = EaseConfig::at_scale(scale_from_env());
    cfg.seed = seed_from_env();
    cfg
}

/// The results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Banner printed by every experiment binary.
pub fn banner(experiment: &str, what: &str) {
    let scale = scale_from_env();
    println!("### {experiment} — {what}");
    println!(
        "### scale={} seed={} (set EASE_SCALE / EASE_SEED to change)\n",
        scale.name(),
        seed_from_env()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        // do not set the env vars here: just exercise default paths
        let cfg = config_from_env();
        assert!(!cfg.ks.is_empty());
        assert!(cfg.processing_k >= 2);
    }
}
