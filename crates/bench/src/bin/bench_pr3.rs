//! PR 3 benchmark — the prepared-graph refactor, measured three ways:
//!
//! 1. **Extraction**: advanced-tier property extraction cold (throwaway
//!    context per call, the pre-refactor behaviour) vs. on a warmed
//!    [`PreparedGraph`] (the profiling/serving steady state).
//! 2. **Profiling**: wall-clock of the exact training configuration
//!    `bench_pr2` used, compared against the `train_secs` it recorded in
//!    `BENCH_pr2.json` — profiling workers now share one context per graph.
//! 3. **Serving**: `recommend_graph` QPS with the fingerprint-keyed
//!    property cache vs. recomputing properties per query.
//!
//! Writes `BENCH_pr3.json`.
//!
//! ```sh
//! cargo run --release -p ease-bench --bin bench_pr3
//! ```

use ease::profiling::TimingMode;
use ease::selector::OptGoal;
use ease::EaseServiceBuilder;
use ease_graph::{GraphProperties, PreparedGraph, PropertyTier};
use ease_graphgen::realworld::{generate_typed, GraphType};
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_graphgen::Scale;
use ease_procsim::Workload;
use std::hint::black_box;
use std::time::Instant;

const EXTRACT_REPS: usize = 9;
const TRAIN_REPS: usize = 2;
const N_QUERY_GRAPHS: usize = 8;
const QUERY_ROUNDS: usize = 64;
const PR2_TRAIN_SECS_FALLBACK: f64 = 2.5923;
/// Train wall-clock vs the PR2 baseline: "no real regression" with a noise
/// margin — both bins now share the prepared-graph pipeline, so the true
/// ratio sits near 1.0 and single-run noise is a few percent.
const TRAIN_SPEEDUP_MIN: f64 = 0.9;

fn min_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Pull a `"key": <number>` value out of a flat JSON file without a JSON
/// dependency (the build environment has no crates.io access).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    println!("### BENCH_pr3 — PreparedGraph: build once, share everywhere");

    // ---- 1. advanced-tier extraction: cold vs prepared -----------------
    let graph = Rmat::new(RMAT_COMBOS[5], 1 << 13, 60_000, 11).generate();
    println!("extraction graph: |V|={} |E|={}", graph.num_vertices(), graph.num_edges());
    let cold_secs = min_secs(EXTRACT_REPS, || {
        black_box(GraphProperties::compute_advanced(black_box(&graph)));
    });
    let prepared = PreparedGraph::of(&graph);
    let t = Instant::now();
    black_box(prepared.properties(PropertyTier::Advanced));
    let prepared_first_secs = t.elapsed().as_secs_f64();
    let prepared_warm_secs = min_secs(EXTRACT_REPS, || {
        black_box(prepared.properties(PropertyTier::Advanced));
    });
    let extraction_speedup = cold_secs / prepared_warm_secs;
    println!(
        "advanced extraction: cold {:.3} ms | prepared first {:.3} ms | warm {:.3} ms -> {extraction_speedup:.1}x",
        cold_secs * 1e3,
        prepared_first_secs * 1e3,
        prepared_warm_secs * 1e3,
    );

    // ---- 2. profiling/training wall-clock vs the PR2 baseline ----------
    let pr2_train_secs = std::fs::read_to_string("BENCH_pr2.json")
        .ok()
        .and_then(|text| json_number(&text, "train_secs"))
        .unwrap_or(PR2_TRAIN_SECS_FALLBACK);
    println!("training the bench_pr2 config ({TRAIN_REPS} reps)...");
    let mut service = None;
    let train_secs = min_secs(TRAIN_REPS, || {
        let s = EaseServiceBuilder::at_scale(Scale::Tiny)
            .quick_grid()
            .timing(TimingMode::Deterministic)
            .seed(42)
            .train()
            .expect("valid config");
        service = Some(s);
    });
    let service = service.expect("trained");
    let train_speedup = pr2_train_secs / train_secs;
    println!("train: {train_secs:.3}s vs PR2 baseline {pr2_train_secs:.3}s -> {train_speedup:.2}x");

    // ---- 3. recommend_graph QPS: cached vs recompute-per-query ---------
    let graphs: Vec<_> = (0..N_QUERY_GRAPHS)
        .map(|i| {
            generate_typed(GraphType::ALL[i % GraphType::ALL.len()], i, Scale::Tiny, 77 + i as u64)
                .graph
        })
        .collect();
    let workload = Workload::PageRank { iterations: 10 };
    // warm the cache once so the measured rounds are all hits
    for g in &graphs {
        service.recommend_graph(g, workload, OptGoal::EndToEnd).expect("trained");
    }
    let n_queries = (N_QUERY_GRAPHS * QUERY_ROUNDS) as f64;
    let cached_secs = min_secs(3, || {
        for _ in 0..QUERY_ROUNDS {
            for g in &graphs {
                black_box(service.recommend_graph(g, workload, OptGoal::EndToEnd).expect("ok"));
            }
        }
    });
    let uncached_secs = min_secs(3, || {
        for _ in 0..QUERY_ROUNDS {
            for g in &graphs {
                let props = GraphProperties::compute_advanced(g);
                black_box(service.recommend(&props, workload, OptGoal::EndToEnd).expect("ok"));
            }
        }
    });
    let cached_qps = n_queries / cached_secs;
    let uncached_qps = n_queries / uncached_secs;
    let stats = service.property_cache_stats();
    println!(
        "recommend_graph: cached {cached_qps:.0} q/s vs recompute {uncached_qps:.0} q/s \
         ({:.1}x, cache {} hits / {} misses)",
        cached_qps / uncached_qps,
        stats.hits,
        stats.misses,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"prepared_graph\",\n  \"pr\": 3,\n  \
         \"extract_reps\": {EXTRACT_REPS},\n  \
         \"cold_extract_secs\": {cold_secs:.6},\n  \
         \"prepared_first_extract_secs\": {prepared_first_secs:.6},\n  \
         \"prepared_warm_extract_secs\": {prepared_warm_secs:.9},\n  \
         \"extraction_speedup\": {extraction_speedup:.3},\n  \
         \"extraction_speedup_min\": 1.5,\n  \
         \"train_secs\": {train_secs:.4},\n  \
         \"pr2_train_secs\": {pr2_train_secs:.4},\n  \
         \"train_speedup\": {train_speedup:.3},\n  \
         \"train_speedup_min\": {TRAIN_SPEEDUP_MIN},\n  \
         \"n_queries\": {},\n  \
         \"cached_recommend_qps\": {cached_qps:.2},\n  \
         \"uncached_recommend_qps\": {uncached_qps:.2},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"note\": \"cold = throwaway context per extraction (pre-refactor behaviour); \
         prepared = shared memoized context; train config identical to bench_pr2\"\n}}\n",
        n_queries as usize, stats.hits, stats.misses,
    );
    std::fs::write("BENCH_pr3.json", &json).expect("write BENCH_pr3.json");
    println!("wrote BENCH_pr3.json");

    assert!(
        extraction_speedup >= 1.5,
        "acceptance: prepared advanced extraction must be >= 1.5x cold, got {extraction_speedup:.2}x"
    );
    // In CI, bench_pr2 rewrites BENCH_pr2.json on the same machine moments
    // before this runs, so the comparison is like-for-like. The steady
    // state of this ratio is ~1.0 once both bins share the prepared-graph
    // pipeline, and single-run wall-clock noise is a few percent — so the
    // gated bound is "no real regression" (>= 0.9x), not "strictly faster".
    assert!(
        train_speedup >= TRAIN_SPEEDUP_MIN,
        "acceptance: profiling wall-clock {train_secs:.3}s must stay within noise of the PR2 \
         baseline {pr2_train_secs:.3}s (>= {TRAIN_SPEEDUP_MIN}x, got {train_speedup:.2}x)"
    );
}
