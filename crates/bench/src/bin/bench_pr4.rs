//! PR 4 benchmark — zero-copy ingestion, measured three ways:
//!
//! 1. **Ingestion throughput**: full-stream consumption of a ≥1M-edge graph
//!    from a text edge list (line parsing into an owned `Graph`) vs. the
//!    memory-mapped `.bel` binary format (zero-copy decode straight off the
//!    mapping). Acceptance: mmap ≥ 3× faster.
//! 2. **Cold `recommend` end-to-end latency per backend**: open + prepare +
//!    advanced-tier extraction + prediction, for in-memory, `.bel` mmap and
//!    streamed-text ingestion of the same graph.
//! 3. **Peak-RSS proxy**: a counting global allocator records bytes
//!    allocated and peak live bytes during each ingestion path — the text
//!    path materializes the edge list, the mmap path allocates nothing
//!    proportional to `|E|`.
//!
//! Writes `BENCH_pr4.json`.
//!
//! ```sh
//! cargo run --release -p ease-bench --bin bench_pr4
//! ```

use ease::profiling::TimingMode;
use ease::selector::OptGoal;
use ease::EaseServiceBuilder;
use ease_graph::bel::{BelSource, BelWriter};
use ease_graph::io::TextEdgeListWriter;
use ease_graph::source::TextStreamSource;
use ease_graph::{GraphSource, PreparedGraph, PropertyTier};
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_graphgen::Scale;
use ease_procsim::Workload;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const NUM_VERTICES: usize = 1 << 17;
const NUM_EDGES: usize = 1_200_000;
const INGEST_REPS: usize = 3;

// ---------------------------------------------------------------------
// Allocation-counting shim around the system allocator
// ---------------------------------------------------------------------

static TOTAL: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the counters never allocate, so the
// GlobalAlloc contract (no recursion, layout forwarded untouched) holds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let size = layout.size() as u64;
        TOTAL.fetch_add(size, Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size; // lint: relaxed-ok(single-threaded bench counter)
        PEAK.fetch_max(live, Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
                                                 // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
                                                                 // SAFETY: `ptr`/`layout` come from the paired `alloc` call above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f`, returning `(result, bytes allocated, peak-live delta)`.
fn alloc_metered<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let live_before = LIVE.load(Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
    PEAK.store(live_before, Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
    let total_before = TOTAL.load(Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
    let out = f();
    let allocated = TOTAL.load(Ordering::Relaxed) - total_before; // lint: relaxed-ok(single-threaded bench counter)
    let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(live_before); // lint: relaxed-ok(single-threaded bench counter)
    (out, allocated, peak_delta)
}

fn min_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    println!("### BENCH_pr4 — zero-copy ingestion: text parse vs mmap .bel");
    let dir = std::env::temp_dir();
    let txt_path = dir.join(format!("bench_pr4_{}.txt", std::process::id()));
    let bel_path = dir.join(format!("bench_pr4_{}.bel", std::process::id()));

    // ---- 0. stream-generate the benchmark graph to both formats --------
    // (constant memory: the generator pipes edges straight into the file
    // writers, exercising the streaming `ease gen` path)
    // lint: magic-ok(RNG seed that happens to spell the frame magic; changing it changes the graph)
    let rmat = Rmat::new(RMAT_COMBOS[6], NUM_VERTICES, NUM_EDGES, 0xEA5E);
    let t = Instant::now();
    {
        let mut txt = TextEdgeListWriter::create(&txt_path).expect("create txt");
        let mut bel = BelWriter::create(&bel_path).expect("create bel");
        rmat.generate_into(&mut |e| {
            txt.push(e).expect("write txt");
            bel.push(e).expect("write bel");
        });
        txt.finish_with_vertices(NUM_VERTICES).expect("finish txt");
        bel.finish_with_vertices(NUM_VERTICES).expect("finish bel");
    }
    let gen_secs = t.elapsed().as_secs_f64();
    let txt_bytes = std::fs::metadata(&txt_path).map(|m| m.len()).unwrap_or(0);
    let bel_bytes = std::fs::metadata(&bel_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "graph: |V|={NUM_VERTICES} |E|={NUM_EDGES}, streamed to disk in {gen_secs:.2}s \
         (txt {:.1} MiB, bel {:.1} MiB)",
        mib(txt_bytes),
        mib(bel_bytes)
    );

    // ---- 1. ingestion throughput: text parse vs mmap -------------------
    // text: the pre-PR-4 path — parse every line into an owned Graph
    let (_, txt_alloc, txt_peak) = alloc_metered(|| {
        black_box(ease_graph::io::read_edge_list(&txt_path).expect("parse txt"));
    });
    let text_parse_secs = min_secs(INGEST_REPS, || {
        black_box(ease_graph::io::read_edge_list(&txt_path).expect("parse txt"));
    });
    // bel: open (validates) + one full zero-copy pass
    let (_, bel_alloc, bel_peak) = alloc_metered(|| {
        let src = BelSource::open(&bel_path).expect("open bel");
        let mut acc = 0u64;
        src.for_each_edge(&mut |e| acc += u64::from(e.src) ^ u64::from(e.dst));
        black_box(acc);
    });
    let mmap_ingest_secs = min_secs(INGEST_REPS, || {
        let src = BelSource::open(&bel_path).expect("open bel");
        let mut acc = 0u64;
        src.for_each_edge(&mut |e| acc += u64::from(e.src) ^ u64::from(e.dst));
        black_box(acc);
    });
    let ingest_speedup = text_parse_secs / mmap_ingest_secs;
    let text_meps = NUM_EDGES as f64 / text_parse_secs / 1e6;
    let mmap_meps = NUM_EDGES as f64 / mmap_ingest_secs / 1e6;
    println!(
        "ingestion: text parse {text_parse_secs:.3}s ({text_meps:.1} Medges/s) | \
         mmap {mmap_ingest_secs:.3}s ({mmap_meps:.1} Medges/s) -> {ingest_speedup:.1}x"
    );
    println!(
        "allocation: text parse {:.1} MiB allocated / {:.1} MiB peak | \
         mmap {:.3} MiB allocated / {:.3} MiB peak",
        mib(txt_alloc),
        mib(txt_peak),
        mib(bel_alloc),
        mib(bel_peak)
    );

    // ---- 2. cold recommend end-to-end latency per backend --------------
    println!("training a tiny service for the serving benchmark...");
    let service = EaseServiceBuilder::at_scale(Scale::Tiny)
        .quick_grid()
        .timing(TimingMode::Deterministic)
        .seed(42)
        .train()
        .expect("valid config");
    let workload = Workload::PageRank { iterations: 10 };
    // cold = open + prepare + advanced extraction + predict, bypassing the
    // service's property cache so every backend pays the full path
    let cold = |props: ease_graph::GraphProperties| {
        black_box(service.recommend(&props, workload, OptGoal::EndToEnd).expect("recommend"));
    };
    let t = Instant::now();
    let in_memory_graph = ease_graph::io::read_edge_list(&txt_path).expect("parse txt");
    let props = PreparedGraph::of(&in_memory_graph).properties(PropertyTier::Advanced);
    cold(props);
    let cold_text_secs = t.elapsed().as_secs_f64();
    drop(in_memory_graph);

    let t = Instant::now();
    let bel_src = BelSource::open(&bel_path).expect("open bel");
    let props = PreparedGraph::of_source(&bel_src).properties(PropertyTier::Advanced);
    cold(props);
    let cold_bel_secs = t.elapsed().as_secs_f64();
    drop(bel_src);

    let t = Instant::now();
    let stream_src = TextStreamSource::open(&txt_path).expect("open stream");
    let props = PreparedGraph::of_source(&stream_src).properties(PropertyTier::Advanced);
    cold(props);
    let cold_stream_secs = t.elapsed().as_secs_f64();
    drop(stream_src);
    println!(
        "cold recommend (open + extract + predict): text-load {cold_text_secs:.3}s | \
         bel-mmap {cold_bel_secs:.3}s | text-stream {cold_stream_secs:.3}s"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"graph_source_ingestion\",\n  \"pr\": 4,\n  \
         \"num_vertices\": {NUM_VERTICES},\n  \"num_edges\": {NUM_EDGES},\n  \
         \"txt_file_bytes\": {txt_bytes},\n  \"bel_file_bytes\": {bel_bytes},\n  \
         \"gen_stream_secs\": {gen_secs:.4},\n  \
         \"text_parse_secs\": {text_parse_secs:.6},\n  \
         \"mmap_ingest_secs\": {mmap_ingest_secs:.6},\n  \
         \"ingest_speedup\": {ingest_speedup:.3},\n  \
         \"ingest_speedup_min\": 3.0,\n  \
         \"text_parse_medges_per_sec\": {text_meps:.3},\n  \
         \"mmap_medges_per_sec\": {mmap_meps:.3},\n  \
         \"text_alloc_bytes\": {txt_alloc},\n  \"text_peak_bytes\": {txt_peak},\n  \
         \"mmap_alloc_bytes\": {bel_alloc},\n  \"mmap_peak_bytes\": {bel_peak},\n  \
         \"cold_recommend_text_secs\": {cold_text_secs:.4},\n  \
         \"cold_recommend_bel_secs\": {cold_bel_secs:.4},\n  \
         \"cold_recommend_stream_secs\": {cold_stream_secs:.4},\n  \
         \"note\": \"ingestion = full-stream consumption; text parses lines into an owned \
         Graph, bel decodes u64 pairs off a private mmap with no owned edge list; \
         alloc/peak from the counting-allocator shim\"\n}}\n",
    );
    std::fs::write("BENCH_pr4.json", &json).expect("write BENCH_pr4.json");
    println!("wrote BENCH_pr4.json");
    std::fs::remove_file(&txt_path).ok();
    std::fs::remove_file(&bel_path).ok();

    assert!(
        ingest_speedup >= 3.0,
        "acceptance: mmap ingestion must be >= 3x text parsing, got {ingest_speedup:.2}x"
    );
    assert!(
        bel_peak * 8 < txt_peak,
        "acceptance: mmap ingestion peak allocation ({bel_peak} B) must be at least 8x \
         below the text parse peak ({txt_peak} B)"
    );
}
