//! PR 9 benchmark — what the fleet router buys a warm serving path:
//!
//! 1. **One-backend fleet** (the PR 6 ceiling, fronted): the router
//!    forwarding every warm query to a single daemon. This measures the
//!    router's forwarding cost on top of the single-daemon warm path.
//! 2. **Four-backend fleet** (this PR): the same query stream, sharded by
//!    consistent hash across four daemons. Every graph's repeat queries
//!    land on its home backend, so all four property caches and
//!    fingerprint memos stay warm in parallel.
//! 3. **Answer fidelity**: every routed answer must be bit-identical to
//!    the direct (unrouted) daemon answer for the same query.
//! 4. **Admission**: against a fleet whose backends have no budget
//!    headroom, the router must shed with the typed `Overloaded` answer,
//!    not force a spill.
//!
//! Acceptance (self-asserted here and gated again by `ci/bench_check.sh`
//! from the recorded `fleet_speedup_min` bound): with ≥ 4 cores the
//! 4-backend fleet sustains ≥ 2x the 1-backend warm QPS; on smaller
//! hosts the fleet must at least degrade gracefully (≥ 0.5x — routing
//! four time-sliced daemons cannot beat one, but it must not collapse).
//!
//! Writes `BENCH_pr9.json`.
//!
//! ```sh
//! cargo run --release -p ease-bench --bin bench_pr9
//! ```

use ease::profiling::TimingMode;
use ease::selector::OptGoal;
use ease::serve::{self, Endpoint, Request, Response, RouterConfig, ServeConfig, ServerHandle};
use ease::{EaseError, EaseService, EaseServiceBuilder, ServeError};
use ease_graph::bel::BelWriter;
use ease_graph::MemoryBudget;
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_graphgen::Scale;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const NUM_VERTICES: usize = 1 << 14;
const NUM_EDGES: usize = 100_000;
/// Distinct graphs in the query stream — enough keys that a 4-node ring
/// spreads real work onto every backend.
const NUM_GRAPHS: usize = 8;
const REPS: usize = 1_600;
const WINDOW: usize = 32;
const MULTI_CORE_SPEEDUP_MIN: f64 = 2.0;
const SINGLE_CORE_SPEEDUP_MIN: f64 = 0.5;

fn start_backend(model: &Path, budget: Option<Arc<MemoryBudget>>) -> (ServerHandle, Endpoint) {
    let service = Arc::new(EaseService::load(model).expect("load model"));
    let mut config = ServeConfig::tcp_at("127.0.0.1:0").workers(2);
    if let Some(budget) = budget {
        config = config.memory_budget(budget);
    }
    let handle = serve::serve(service, config).expect("bind backend");
    let tcp = handle.tcp_addr().expect("tcp bound").to_string();
    (handle, Endpoint::tcp(tcp))
}

fn start_router(dir: &Path, tag: &str, backends: Vec<Endpoint>) -> (ServerHandle, Endpoint) {
    let socket = dir.join(format!("{tag}.router.sock"));
    let config =
        RouterConfig::new(ServeConfig::at(&socket).workers(4), backends).forward_shutdown(false);
    let handle = serve::route(config).expect("bind router");
    (handle, Endpoint::unix(socket))
}

fn main() {
    println!("### BENCH_pr9 — ease route: 4-backend fleet vs 1-backend fleet, warm QPS");
    let dir = std::env::temp_dir().join(format!("bench_pr9_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let model_path = dir.join("ease.model");

    // ---- 0. stream-generate the query graphs, train + persist a service -
    let graphs: Vec<PathBuf> = (0..NUM_GRAPHS)
        .map(|i| {
            let path = dir.join(format!("g{i}.bel"));
            let rmat = Rmat::new(
                RMAT_COMBOS[i % RMAT_COMBOS.len()],
                NUM_VERTICES,
                NUM_EDGES,
                77 + i as u64,
            );
            let mut bel = BelWriter::create(&path).expect("create bel");
            let mut write_error = None;
            rmat.generate_into(&mut |e| {
                if write_error.is_none() {
                    write_error = bel.push(e).err();
                }
            });
            assert!(write_error.is_none(), "write bel: {write_error:?}");
            bel.finish_with_vertices(NUM_VERTICES).expect("finish bel");
            path
        })
        .collect();
    println!("graphs: {NUM_GRAPHS} x (|V|={NUM_VERTICES} |E|={NUM_EDGES}) in {}", dir.display());
    let t = Instant::now();
    let service = EaseServiceBuilder::at_scale(Scale::Tiny)
        .quick_grid()
        .timing(TimingMode::Deterministic)
        .seed(42)
        .train()
        .expect("valid config");
    let train_secs = t.elapsed().as_secs_f64();
    service.save(&model_path).expect("save model");
    drop(service);
    println!("trained in {train_secs:.2}s, saved {}", model_path.display());
    let request = |graph: &Path| Request::Recommend {
        graph: graph.to_str().expect("utf8 path").to_string(),
        workload: "pr".to_string(),
        k: None,
        goal: OptGoal::EndToEnd,
        top: serve::DEFAULT_TOP,
        cwd: None,
    };
    // the query stream: REPS warm queries cycling over all graphs
    let stream: Vec<Request> = (0..REPS).map(|i| request(&graphs[i % NUM_GRAPHS])).collect();

    // ---- 1. fidelity references from a direct (unrouted) daemon ---------
    let (direct, direct_ep) = start_backend(&model_path, None);
    let references: Vec<String> = graphs
        .iter()
        .map(|g| {
            serve::expect_answer(
                serve::call_endpoint(&direct_ep, &request(g)).expect("direct call"),
            )
            .expect("direct answer")
        })
        .collect();
    direct.trigger_shutdown();
    direct.join().expect("clean direct join");

    // ---- 2. measure a fleet of n backends behind the router -------------
    let measure_fleet = |n: usize| -> f64 {
        let fleet: Vec<(ServerHandle, Endpoint)> =
            (0..n).map(|_| start_backend(&model_path, None)).collect();
        let endpoints: Vec<Endpoint> = fleet.iter().map(|(_, ep)| ep.clone()).collect();
        let (router, front) = start_router(&dir, &format!("fleet{n}"), endpoints);
        // warmup: seed every home backend's property cache and memo, and
        // pin fidelity — routed answers must match the direct daemon's
        for (graph, reference) in graphs.iter().zip(&references) {
            let answer =
                serve::expect_answer(serve::call_endpoint(&front, &request(graph)).unwrap())
                    .expect("routed answer");
            assert_eq!(&answer, reference, "routed answer must be bit-identical to direct");
        }
        let t = Instant::now();
        let responses = serve::call_pipelined(&front, &stream, WINDOW).expect("pipelined stream");
        let total = t.elapsed().as_secs_f64();
        assert_eq!(responses.len(), REPS);
        for (i, response) in responses.into_iter().enumerate() {
            let answer = black_box(serve::expect_answer(response).expect("answer"));
            assert_eq!(&answer, &references[i % NUM_GRAPHS], "fidelity at {i}");
        }
        let qps = REPS as f64 / total;
        println!(
            "fleet of {n}: {:.3} ms per query ({qps:.0} q/s) over {REPS} warm queries, \
             window {WINDOW}",
            total / REPS as f64 * 1e3,
        );
        router.trigger_shutdown();
        router.join().expect("clean router join");
        for (handle, _) in fleet {
            handle.trigger_shutdown();
            handle.join().expect("clean backend join");
        }
        qps
    };
    let one_backend_qps = measure_fleet(1);
    let four_backend_qps = measure_fleet(4);
    let fleet_speedup = four_backend_qps / one_backend_qps;

    // ---- 3. admission: a fleet with no headroom sheds, typed ------------
    let tiny = || Some(Arc::new(MemoryBudget::bytes(1).with_spill_dir(&dir)));
    let saturated: Vec<(ServerHandle, Endpoint)> =
        (0..2).map(|_| start_backend(&model_path, tiny())).collect();
    let endpoints: Vec<Endpoint> = saturated.iter().map(|(_, ep)| ep.clone()).collect();
    let (router, front) = start_router(&dir, "saturated", endpoints);
    let shed = serve::call_endpoint(&front, &request(&graphs[0])).expect("transport ok");
    let overload_shed = match shed {
        Response::Overloaded { needed, headroom } => {
            println!("admission: saturated fleet shed the query (needed {needed} B, best headroom {headroom} B)");
            assert!(matches!(
                serve::expect_answer(Response::Overloaded { needed, headroom }),
                Err(EaseError::Serve(ServeError::Overloaded { .. }))
            ));
            true
        }
        other => panic!("expected a typed Overloaded shed, got {other:?}"),
    };
    router.trigger_shutdown();
    router.join().expect("clean router join");
    for (handle, _) in saturated {
        handle.trigger_shutdown();
        handle.join().expect("clean backend join");
    }

    // ---- 4. record + gate ------------------------------------------------
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    // Bound recorded into the JSON and gated by ci/bench_check.sh: the
    // sharded fleet must scale on real parallelism and at worst degrade
    // gracefully when four daemons time-slice one core.
    let fleet_speedup_min =
        if threads >= 4 { MULTI_CORE_SPEEDUP_MIN } else { SINGLE_CORE_SPEEDUP_MIN };
    let note = if threads >= 4 {
        "4 warm backends behind the consistent-hash router vs 1; every routed answer \
         bit-identical to the direct daemon; saturated fleet sheds with typed Overloaded"
    } else {
        "single/low-core host: four time-sliced daemons cannot beat one, so the bound only \
         requires graceful degradation; the 2x fleet bound applies at >= 4 cores"
    };
    println!(
        "\nfleet speedup: {fleet_speedup:.2}x (1-backend {one_backend_qps:.0} q/s -> \
         4-backend {four_backend_qps:.0} q/s) on {threads} threads, bound {fleet_speedup_min}x"
    );
    let json = format!(
        "{{\n  \"benchmark\": \"route_fleet_vs_single_backend\",\n  \"pr\": 9,\n  \
         \"num_graphs\": {NUM_GRAPHS},\n  \"num_vertices\": {NUM_VERTICES},\n  \
         \"num_edges\": {NUM_EDGES},\n  \"reps\": {REPS},\n  \
         \"pipeline_window\": {WINDOW},\n  \"threads\": {threads},\n  \
         \"train_secs\": {train_secs:.4},\n  \
         \"one_backend_qps\": {one_backend_qps:.2},\n  \
         \"four_backend_qps\": {four_backend_qps:.2},\n  \
         \"fleet_speedup\": {fleet_speedup:.3},\n  \
         \"fleet_speedup_min\": {fleet_speedup_min},\n  \
         \"answers_bit_identical\": true,\n  \
         \"overload_shed_typed\": {overload_shed},\n  \
         \"note\": \"{note}\"\n}}\n",
    );
    std::fs::write("BENCH_pr9.json", &json).expect("write BENCH_pr9.json");
    println!("wrote BENCH_pr9.json");
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        fleet_speedup >= fleet_speedup_min,
        "acceptance: the 4-backend fleet must sustain >= {fleet_speedup_min}x the 1-backend \
         warm QPS on this host, got {fleet_speedup:.2}x"
    );
}
