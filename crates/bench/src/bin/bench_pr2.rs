//! PR 2 benchmark — `EaseService::recommend_batch` (std::thread fan-out)
//! vs. a sequential query loop over the same trained service.
//!
//! Trains one quick tiny service, generates ≥ 64 synthetic query graphs,
//! answers every `(graph, workload, goal)` query both ways, verifies the
//! answers agree, and writes the throughput comparison to `BENCH_pr2.json`.
//!
//! ```sh
//! cargo run --release -p ease-bench --bin bench_pr2
//! ```

use ease::profiling::TimingMode;
use ease::selector::OptGoal;
use ease::{EaseServiceBuilder, RecommendQuery};
use ease_graph::GraphProperties;
use ease_graphgen::realworld::{generate_typed, GraphType};
use ease_graphgen::Scale;
use ease_procsim::Workload;
use std::time::Instant;

const N_GRAPHS: usize = 96;
const REPS: usize = 5;

fn main() {
    println!("### BENCH_pr2 — recommend_batch vs sequential recommend");
    println!("training a quick tiny service (deterministic timing)...");
    let t0 = Instant::now();
    let service = EaseServiceBuilder::at_scale(Scale::Tiny)
        .quick_grid()
        .timing(TimingMode::Deterministic)
        .seed(42)
        .train()
        .expect("valid config");
    let train_secs = t0.elapsed().as_secs_f64();
    println!("trained in {train_secs:.1}s");

    println!("generating {N_GRAPHS} query graphs + properties...");
    let workloads = [
        Workload::PageRank { iterations: 10 },
        Workload::ConnectedComponents,
        Workload::Sssp { source_seed: 0x55AA },
        Workload::KCores,
    ];
    let queries: Vec<RecommendQuery> = (0..N_GRAPHS)
        .map(|i| {
            let kind = GraphType::ALL[i % GraphType::ALL.len()];
            let tg = generate_typed(kind, i % 3, Scale::Tiny, 1000 + i as u64);
            RecommendQuery {
                props: GraphProperties::compute_advanced(&tg.graph),
                workload: workloads[i % workloads.len()],
                k: [2, 4, 8][i % 3],
                goal: if i % 2 == 0 { OptGoal::EndToEnd } else { OptGoal::ProcessingOnly },
            }
        })
        .collect();

    // warm-up + correctness: threaded answers must equal sequential ones
    let warm_seq: Vec<_> = queries
        .iter()
        .map(|q| service.recommend_with_k(&q.props, q.workload, q.k, q.goal).expect("trained"))
        .collect();
    let warm_batch = service.recommend_batch(&queries);
    for (s, b) in warm_seq.iter().zip(&warm_batch) {
        assert_eq!(s.best, b.as_ref().expect("trained").best, "batch must agree with sequential");
    }

    let mut sequential_secs = f64::INFINITY;
    let mut batch_secs = f64::INFINITY;
    for rep in 0..REPS {
        let t = Instant::now();
        let out: Vec<_> = queries
            .iter()
            .map(|q| service.recommend_with_k(&q.props, q.workload, q.k, q.goal).expect("trained"))
            .collect();
        let seq = t.elapsed().as_secs_f64();
        std::hint::black_box(&out);
        let t = Instant::now();
        let out = service.recommend_batch(&queries);
        let bat = t.elapsed().as_secs_f64();
        std::hint::black_box(&out);
        sequential_secs = sequential_secs.min(seq);
        batch_secs = batch_secs.min(bat);
        println!("rep {rep}: sequential {seq:.4}s | batch {bat:.4}s");
    }
    let speedup = sequential_secs / batch_secs;
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "\n{N_GRAPHS} queries: sequential {sequential_secs:.4}s ({:.0} q/s) vs batch \
         {batch_secs:.4}s ({:.0} q/s) -> {speedup:.2}x on {threads} threads",
        N_GRAPHS as f64 / sequential_secs,
        N_GRAPHS as f64 / batch_secs,
    );

    let note = if threads == 1 {
        "single available core: recommend_batch degrades gracefully to the sequential path; \
         the fan-out speedup requires >1 threads"
    } else {
        "min-of-reps wall-clock over identical query sets"
    };
    // Bound recorded into the JSON and gated by ci/bench_check.sh: batch
    // must at least degrade gracefully (no more than modest overhead vs
    // sequential), whatever the core count.
    let speedup_min = 0.75;
    let json = format!(
        "{{\n  \"benchmark\": \"recommend_batch_vs_sequential\",\n  \"pr\": 2,\n  \
         \"n_queries\": {N_GRAPHS},\n  \"reps\": {REPS},\n  \"threads\": {threads},\n  \
         \"train_secs\": {train_secs:.4},\n  \"sequential_secs\": {sequential_secs:.6},\n  \
         \"batch_secs\": {batch_secs:.6},\n  \"sequential_qps\": {:.2},\n  \
         \"batch_qps\": {:.2},\n  \"speedup\": {speedup:.3},\n  \
         \"speedup_min\": {speedup_min},\n  \"note\": \"{note}\"\n}}\n",
        N_GRAPHS as f64 / sequential_secs,
        N_GRAPHS as f64 / batch_secs,
    );
    std::fs::write("BENCH_pr2.json", &json).expect("write BENCH_pr2.json");
    println!("wrote BENCH_pr2.json");

    assert!(
        speedup >= speedup_min,
        "acceptance: batch must not regress below {speedup_min}x of sequential, got {speedup:.2}x"
    );
}
