//! Fig. 2 — Label Propagation on the Socfb-A-anon analogue: processing
//! time, vertex balance and replication factor for DBH, 2D, NE
//! (4 partitions / 4 machines, 10 iterations).
//!
//! Expected shape (paper Sec. III-B): vertex balance close to 1 yields the
//! lowest processing time; the replication factor matters less because the
//! workload is computation-bound.

use ease::report::{f3, render_table, write_csv};
use ease_bench::{banner, results_dir, scale_from_env, seed_from_env};
use ease_partition::{run_partitioner, PartitionerId};
use ease_procsim::{ClusterSpec, DistributedGraph, Workload};

fn main() {
    banner("Fig. 2", "Label Propagation: time / vertex balance / RF");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let k = 4;
    let tg = ease_graphgen::realworld::socfb_analogue(scale, seed);
    println!("graph {} — |V|={} |E|={}", tg.name, tg.graph.num_vertices(), tg.graph.num_edges());
    let workload = Workload::LabelPropagation { iterations: 10 };
    let cluster = ClusterSpec::new(k);
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for p in [PartitionerId::Dbh, PartitionerId::TwoD, PartitionerId::Ne] {
        let run = run_partitioner(p, &tg.graph, k, seed);
        let dg = DistributedGraph::build(&tg.graph, &run.partition);
        let report = workload.execute(&dg, &cluster);
        rows.push(vec![
            p.name().to_string(),
            f3(report.total_secs),
            f3(run.metrics.vertex_balance),
            f3(run.metrics.replication_factor),
        ]);
        csv_rows.push(vec![
            p.name().to_string(),
            format!("{}", report.total_secs),
            f3(run.metrics.vertex_balance),
            f3(run.metrics.replication_factor),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Fig. 2 rows (Socfb-A-anon analogue)",
            &["partitioner", "lp seconds", "vertex balance", "replication factor"],
            &rows
        )
    );
    write_csv(
        &results_dir().join("fig2.csv"),
        &["partitioner", "processing_secs", "vertex_balance", "replication_factor"],
        &csv_rows,
    )
    .expect("write fig2.csv");
    println!("wrote results/fig2.csv");
}
