//! Tables I & II — the R-MAT training grids and parameter combinations,
//! plus summary statistics of the generated corpora at the active scale.

use ease::report::{f3, render_table, write_csv};
use ease_bench::{banner, results_dir, scale_from_env};
use ease_graphgen::grids::{rmat_large_corpus, rmat_small_corpus};
use ease_graphgen::rmat::RMAT_COMBOS;

fn main() {
    banner("Tables I & II", "R-MAT training corpora");
    // Table II: parameter combinations
    let combo_rows: Vec<Vec<String>> = RMAT_COMBOS
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                format!("C{}", i + 1),
                format!("{:.2}", p.a),
                format!("{:.2}", p.b),
                format!("{:.2}", p.c),
                format!("{:.2}", p.d),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table("Table II — R-MAT combos", &["combo", "a", "b", "c", "d"], &combo_rows)
    );

    let scale = scale_from_env();
    for (label, corpus) in [
        ("Ia (R-MAT-SMALL)", rmat_small_corpus(scale)),
        ("Ib (R-MAT-LARGE)", rmat_large_corpus(scale)),
    ] {
        // summarize the (E, V) grid
        let mut grid: Vec<(usize, Vec<usize>)> = Vec::new();
        for s in &corpus {
            match grid.iter_mut().find(|(e, _)| *e == s.num_edges) {
                Some((_, vs)) => {
                    if !vs.contains(&s.num_vertices) {
                        vs.push(s.num_vertices);
                    }
                }
                None => grid.push((s.num_edges, vec![s.num_vertices])),
            }
        }
        let rows: Vec<Vec<String>> = grid
            .iter()
            .map(|(e, vs)| {
                let mut vs = vs.clone();
                vs.sort_unstable();
                vec![
                    format!("{e}"),
                    vs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", "),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!("Table {label} at scale {} — {} graphs", scale.name(), corpus.len()),
                &["|E|", "|V| values (x9 combos each)"],
                &rows
            )
        );
        let csv: Vec<Vec<String>> = corpus
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    format!("{}", s.num_edges),
                    format!("{}", s.num_vertices),
                    format!("C{}", s.combo_index + 1),
                    f3(2.0 * s.num_edges as f64 / s.num_vertices as f64),
                ]
            })
            .collect();
        let file = if label.starts_with("Ia") { "table1a.csv" } else { "table1b.csv" };
        write_csv(
            &results_dir().join(file),
            &["name", "edges", "vertices", "combo", "mean_degree"],
            &csv,
        )
        .expect("write corpus csv");
        println!("wrote results/{file}\n");
    }
}
