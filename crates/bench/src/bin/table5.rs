//! Table V — ProcessingTimePredictor accuracy on the Table IV test graphs:
//! MAPE per graph processing algorithm, with the winning model family.
//! Also reports the PartitioningTimePredictor test MAPE (paper: 0.335).

use ease::evaluation::{partitioning_time_score, processing_test_scores};
use ease::pipeline::dedup_partition_runs;
use ease::profiling::{profile_processing, GraphInput};
use ease::report::{f3, render_table, write_csv};
use ease::EaseServiceBuilder;
use ease_bench::{banner, config_from_env, results_dir, seed_from_env};

fn main() {
    banner("Table V", "processing-time predictor MAPE per algorithm");
    let cfg = config_from_env();
    let seed = seed_from_env();
    println!(
        "training EASE on R-MAT-LARGE ({} graphs, k={})...",
        cfg.large_inputs().len(),
        cfg.processing_k
    );
    let service = EaseServiceBuilder::from_config(cfg.clone()).train().expect("valid config");
    let ease = service.ease();

    println!("profiling Table IV test graphs...");
    let test_inputs =
        GraphInput::from_tests(ease_graphgen::realworld::table4_test_set(cfg.scale, seed ^ 0x7AB4));
    let test_records = profile_processing(
        &test_inputs,
        &cfg.partitioners,
        cfg.processing_k,
        &cfg.workloads,
        cfg.seed ^ 2,
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, mape) in processing_test_scores(&ease.processing_time, &test_records) {
        let workload_label = test_records
            .iter()
            .find(|r| r.workload.name() == name)
            .map(|r| r.workload.label())
            .unwrap_or(name);
        let model = ease
            .processing_time
            .chosen
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c.config.kind().name())
            .unwrap_or("?");
        rows.push(vec![workload_label.to_string(), model.to_string(), f3(mape)]);
        csv.push(vec![name.to_string(), model.to_string(), format!("{mape}")]);
    }
    println!(
        "{}",
        render_table(
            "Table V — ProcessingTimePredictor test MAPE",
            &["algorithm", "model", "MAPE"],
            &rows
        )
    );
    println!("(paper MAPEs: CC 0.272, K-Cores 0.401, PR 0.295, SSSP 0.300, Syn-High 0.259, Syn-Low 0.271)\n");

    let ptime_mape =
        partitioning_time_score(&ease.partitioning_time, &dedup_partition_runs(&test_records));
    println!(
        "PartitioningTimePredictor test MAPE = {} (paper: 0.335, model XGB; ours chose {})",
        f3(ptime_mape),
        ease.partitioning_time.chosen.config.kind().name()
    );
    csv.push(vec![
        "partitioning-time".into(),
        ease.partitioning_time.chosen.config.kind().name().into(),
        format!("{ptime_mape}"),
    ]);
    write_csv(&results_dir().join("table5.csv"), &["algorithm", "model", "mape"], &csv)
        .expect("write table5.csv");
    println!("wrote results/table5.csv");
}
