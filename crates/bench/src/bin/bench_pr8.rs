//! PR 8 benchmark — out-of-core derived state under a memory budget.
//!
//! The scenario the tentpole exists for: `ease features --tier advanced`
//! on a graph whose undirected simplified CSR alone exceeds the configured
//! memory budget. Two in-process runs of exactly the extraction the CLI
//! performs (open `.bel` → prepare → advanced-tier properties):
//!
//! 1. **Spilled** (budget 8 MiB): every over-budget CSR build goes to a
//!    memory-mapped temp spill; heap stays near the budget.
//! 2. **Heap** (no budget): the pre-PR-8 behaviour, whole CSR on the heap.
//!
//! Measured per run: wall time, peak RSS via `VmHWM` (the spilled run goes
//! *first* — `VmHWM` is monotonic per process), and precise heap peaks via
//! a counting global allocator. Acceptance: both runs produce bit-identical
//! properties and fingerprints; the spilled run's RSS delta stays within
//! budget + mapped-spill size + slack (`rss_budget_ratio <= 1.0`, gated by
//! `ci/bench_check.sh`); the heap run's peak live heap exceeds the spilled
//! run's by >= 1.3x.
//!
//! Writes `BENCH_pr8.json`.
//!
//! ```sh
//! cargo run --release -p ease-bench --bin bench_pr8
//! ```

use ease_graph::bel::{BelSource, BelWriter};
use ease_graph::source::fingerprint_source;
use ease_graph::{Csr, MemoryBudget, PreparedGraph, PropertyTier};
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const NUM_VERTICES: usize = 1 << 17;
const NUM_EDGES: usize = 3_000_000;
const BUDGET_BYTES: usize = 8 << 20;
/// RSS slack over budget + mapped spill: chunk buffers, `O(|V|)` tables,
/// allocator overhead. Tight enough that reintroducing the pre-refactor
/// full-heap CSR build (~24 MiB extra) blows the gate.
const RSS_SLACK_BYTES: u64 = 16 << 20;

// ---------------------------------------------------------------------
// Allocation-counting shim around the system allocator
// ---------------------------------------------------------------------

static TOTAL: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the counters never allocate, so the
// GlobalAlloc contract (no recursion, layout forwarded untouched) holds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let size = layout.size() as u64;
        TOTAL.fetch_add(size, Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size; // lint: relaxed-ok(single-threaded bench counter)
        PEAK.fetch_max(live, Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
                                                 // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
                                                                 // SAFETY: `ptr`/`layout` come from the paired `alloc` call above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f`, returning `(result, peak-live heap delta)`.
fn peak_metered<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let live_before = LIVE.load(Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
    PEAK.store(live_before, Ordering::Relaxed); // lint: relaxed-ok(single-threaded bench counter)
    let out = f();
    let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(live_before); // lint: relaxed-ok(single-threaded bench counter)
    (out, peak_delta)
}

/// Peak resident set size of this process so far, from `/proc/self/status`
/// `VmHWM` (monotonic — it never decreases). 0 on platforms without procfs;
/// every RSS-derived metric then degrades to a trivially passing 0.
fn vm_hwm_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    println!("### BENCH_pr8 — out-of-core derived state under a memory budget");
    let dir = std::env::temp_dir();
    let bel_path = dir.join(format!("bench_pr8_{}.bel", std::process::id()));
    let spill_dir = dir.join(format!("bench_pr8_spills_{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("create spill dir");

    // ---- 0. stream-generate the over-budget graph ----------------------
    // constant memory: edges go straight to disk, the graph never exists
    // as an owned Vec<Edge> in this process
    let rmat = Rmat::new(RMAT_COMBOS[6], NUM_VERTICES, NUM_EDGES, 0x0E5E);
    let t = Instant::now();
    {
        let mut bel = BelWriter::create(&bel_path).expect("create bel");
        rmat.generate_into(&mut |e| bel.push(e).expect("write bel"));
        bel.finish_with_vertices(NUM_VERTICES).expect("finish bel");
    }
    let gen_secs = t.elapsed().as_secs_f64();
    let undirected_heap_bytes = Csr::heap_bytes(NUM_VERTICES, NUM_EDGES * 2) as u64;
    println!(
        "graph: |V|={NUM_VERTICES} |E|={NUM_EDGES}, streamed to .bel in {gen_secs:.2}s; \
         undirected CSR needs {:.1} MiB heap vs a {:.1} MiB budget",
        mib(undirected_heap_bytes),
        mib(BUDGET_BYTES as u64)
    );
    assert!(
        undirected_heap_bytes > BUDGET_BYTES as u64,
        "scenario precondition: the undirected CSR must exceed the budget"
    );

    let source = BelSource::open(&bel_path).expect("open bel");
    // fault in every page of the input mapping before the baseline, so the
    // spilled run's RSS delta measures *derived state*, not input pages
    black_box(fingerprint_source(&source));
    let baseline_hwm = vm_hwm_bytes();

    // ---- 1. spilled run FIRST (VmHWM is monotonic) ---------------------
    let budget = Arc::new(MemoryBudget::bytes(BUDGET_BYTES).with_spill_dir(&spill_dir));
    let t = Instant::now();
    let ((spilled_props, spilled_fp, spill_bytes, spilled_builds), spilled_peak_live) =
        peak_metered(|| {
            let ctx = PreparedGraph::of_source(&source).with_memory_budget(Arc::clone(&budget));
            let props = ctx.properties(PropertyTier::Advanced);
            let spill_bytes = ctx.undirected_simple().storage_bytes() as u64;
            (props, ctx.fingerprint(), spill_bytes, ctx.spilled_csr_builds())
        });
    let spilled_secs = t.elapsed().as_secs_f64();
    let spilled_hwm = vm_hwm_bytes();
    assert!(spilled_builds >= 1, "the extraction must actually have spilled");
    let spills_left = std::fs::read_dir(&spill_dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(spills_left, 0, "spill files must be unlinked while mapped");

    // ---- 2. heap run (pre-PR-8 behaviour) ------------------------------
    let t = Instant::now();
    let ((heap_props, heap_fp), heap_peak_live) = peak_metered(|| {
        let ctx = PreparedGraph::of_source(&source);
        (ctx.properties(PropertyTier::Advanced), ctx.fingerprint())
    });
    let heap_secs = t.elapsed().as_secs_f64();
    assert_eq!(spilled_props, heap_props, "spilled analysis must be bit-identical");
    assert_eq!(spilled_fp, heap_fp, "fingerprints must agree");

    // ---- 3. metrics ----------------------------------------------------
    let rss_delta = spilled_hwm.saturating_sub(baseline_hwm);
    // the mapped spill counts toward RSS (its pages are touched by the
    // triangle pass) but not toward the budget: it is reclaimable cache
    let rss_allowed = BUDGET_BYTES as u64 + spill_bytes + RSS_SLACK_BYTES;
    let rss_budget_ratio = rss_delta as f64 / rss_allowed as f64;
    let peak_live_speedup = heap_peak_live as f64 / (spilled_peak_live.max(1)) as f64;
    println!(
        "spilled: {spilled_secs:.2}s, peak live heap {:.1} MiB, RSS delta {:.1} MiB \
         (allowed {:.1} MiB -> ratio {rss_budget_ratio:.3})",
        mib(spilled_peak_live),
        mib(rss_delta),
        mib(rss_allowed)
    );
    println!(
        "heap:    {heap_secs:.2}s, peak live heap {:.1} MiB -> {peak_live_speedup:.1}x more \
         heap than the budgeted run",
        mib(heap_peak_live)
    );

    let json = format!(
        "{{\n  \"benchmark\": \"out_of_core_features\",\n  \"pr\": 8,\n  \
         \"num_vertices\": {NUM_VERTICES},\n  \"num_edges\": {NUM_EDGES},\n  \
         \"budget_bytes\": {BUDGET_BYTES},\n  \
         \"undirected_csr_heap_bytes\": {undirected_heap_bytes},\n  \
         \"spill_file_bytes\": {spill_bytes},\n  \
         \"spilled_csr_builds\": {spilled_builds},\n  \
         \"gen_stream_secs\": {gen_secs:.4},\n  \
         \"features_spilled_secs\": {spilled_secs:.4},\n  \
         \"features_heap_secs\": {heap_secs:.4},\n  \
         \"spilled_peak_live_bytes\": {spilled_peak_live},\n  \
         \"heap_peak_live_bytes\": {heap_peak_live},\n  \
         \"heap_over_spilled_peak_live_speedup\": {peak_live_speedup:.3},\n  \
         \"heap_over_spilled_peak_live_speedup_min\": 1.3,\n  \
         \"rss_baseline_bytes\": {baseline_hwm},\n  \
         \"rss_spilled_hwm_bytes\": {spilled_hwm},\n  \
         \"rss_delta_bytes\": {rss_delta},\n  \
         \"rss_allowed_bytes\": {rss_allowed},\n  \
         \"rss_budget_ratio\": {rss_budget_ratio:.4},\n  \
         \"rss_budget_ratio_max\": 1.0,\n  \
         \"note\": \"advanced-tier extraction on a .bel graph whose undirected CSR \
         (~24 MiB) exceeds the 8 MiB budget; spilled run first because VmHWM is \
         monotonic; RSS allowance = budget + mapped spill + slack, so regressing to \
         a full-heap CSR build fails the ratio gate; peak-live from the \
         counting-allocator shim\"\n}}\n",
    );
    std::fs::write("BENCH_pr8.json", &json).expect("write BENCH_pr8.json");
    println!("wrote BENCH_pr8.json");
    std::fs::remove_file(&bel_path).ok();
    std::fs::remove_dir_all(&spill_dir).ok();

    assert!(
        rss_budget_ratio <= 1.0,
        "acceptance: spilled-run RSS delta ({rss_delta} B) exceeded budget + spill + slack \
         ({rss_allowed} B)"
    );
    assert!(
        peak_live_speedup >= 1.3,
        "acceptance: the unbudgeted run must allocate >= 1.3x the spilled run's peak heap, \
         got {peak_live_speedup:.2}x"
    );
}
