//! Fig. 8 — replication-factor MAPE per graph type as a function of the
//! enrichment level (0/19/38/57/76/96 wiki graphs), three random subset
//! draws per level, mean ± std.

use ease::enrich::{aggregate_point, enrichment_sweep};
use ease::profiling::{profile_quality, GraphInput};
use ease::report::{render_table, write_csv};
use ease_bench::{banner, config_from_env, results_dir, seed_from_env};
use ease_graph::PropertyTier;
use ease_graphgen::realworld::GraphType;
use ease_ml::ModelConfig;
use ease_partition::QualityTarget;

fn main() {
    banner("Fig. 8", "MAPE vs enrichment level");
    let cfg = config_from_env();
    let seed = seed_from_env();
    let rfr = ModelConfig::Forest { n_trees: 60, max_depth: 14, feature_fraction: 0.6 };
    let sizes = [0usize, 19, 38, 57, 76, 96];
    let repetitions = 3;

    println!("profiling training corpus...");
    let train = profile_quality(&cfg.small_inputs(), &cfg.partitioners, &cfg.ks, cfg.seed);
    println!("profiling enrichment pool (96 wiki graphs)...");
    let pool_inputs = GraphInput::from_tests(ease_graphgen::realworld::wiki_enrichment_pool(
        cfg.scale,
        seed ^ 0x7E57,
    ));
    let pool = profile_quality(&pool_inputs, &cfg.partitioners, &cfg.ks, cfg.seed ^ 2);
    println!("profiling test set...");
    let test_inputs = GraphInput::from_tests(ease_graphgen::realworld::standard_test_set(
        cfg.scale,
        seed ^ 0x7E57,
    ));
    let test = profile_quality(&test_inputs, &cfg.partitioners, &cfg.ks, cfg.seed ^ 1);

    println!("running enrichment sweep ({} levels x {} reps)...", sizes.len(), repetitions);
    let points = enrichment_sweep(
        &train,
        &pool,
        &test,
        &sizes,
        repetitions,
        PropertyTier::Basic,
        &rfr,
        QualityTarget::ReplicationFactor,
        seed,
    );

    let mut curves: Vec<(String, Option<GraphType>)> = vec![("all".into(), None)];
    curves.extend(GraphType::ALL.iter().map(|t| (format!("realworld-{}", t.name()), Some(*t))));
    let header: Vec<String> = std::iter::once("curve".to_string())
        .chain(sizes.iter().map(|s| format!("n={s}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (label, gt) in &curves {
        let mut row = vec![label.clone()];
        for &size in &sizes {
            match aggregate_point(&points, size, *gt) {
                Some((mean, std)) => row.push(format!("{mean:.3}±{std:.3}")),
                None => row.push("-".into()),
            }
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table("Fig. 8 — RF MAPE by enrichment level (mean±std)", &header_refs, &rows)
    );
    println!("(paper: wiki curve drops 0.555 -> 0.244; even 19 graphs help a lot)");
    write_csv(&results_dir().join("fig8.csv"), &header_refs, &rows).expect("write fig8 csv");
    println!("wrote results/fig8.csv");
}
