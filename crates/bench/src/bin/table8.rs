//! Table VIII — automatic partitioner selection versus the baselines:
//! S_PS (EASE) against S_O (optimal), S_SRF (smallest replication factor),
//! S_R (random, in expectation) and S_W (worst), for both optimization
//! goals and all six workloads; plus (b) the enrichment variant and the
//! Sec. I headline numbers.

use ease::enrich::train_enriched;
use ease::evaluation::{evaluate_selection, group_truth};
use ease::profiling::{profile_processing, profile_quality, GraphInput};
use ease::report::{pct, render_table, write_csv};
use ease::selector::OptGoal;
use ease::EaseServiceBuilder;
use ease_bench::{banner, config_from_env, results_dir, seed_from_env};
use ease_graph::PropertyTier;
use ease_ml::ModelConfig;

fn main() {
    banner("Table VIII", "selection strategies: S_PS vs S_O / S_SRF / S_R / S_W");
    let cfg = config_from_env();
    let seed = seed_from_env();

    println!("training EASE (full pipeline)...");
    let (service, artifacts) =
        EaseServiceBuilder::from_config(cfg.clone()).train_with_artifacts().expect("valid config");
    let ease = service.into_ease();

    println!("profiling Table IV test graphs (ground truth for all partitioners)...");
    let test_inputs =
        GraphInput::from_tests(ease_graphgen::realworld::table4_test_set(cfg.scale, seed ^ 0x7AB4));
    let test_records = profile_processing(
        &test_inputs,
        &cfg.partitioners,
        cfg.processing_k,
        &cfg.workloads,
        cfg.seed ^ 2,
    );
    let groups = group_truth(&test_records);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut headline = Vec::new();
    for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
        let (selection_rows, stats) = evaluate_selection(&ease, &groups, cfg.processing_k, goal);
        for r in &selection_rows {
            rows.push(vec![
                goal.name().to_string(),
                r.workload.to_string(),
                pct(r.vs_optimal),
                pct(r.vs_srf),
                pct(r.vs_random),
                pct(r.vs_worst),
                pct(r.srf_vs_optimal),
            ]);
            csv.push(vec![
                goal.name().to_string(),
                r.workload.to_string(),
                format!("{}", r.vs_optimal),
                format!("{}", r.vs_srf),
                format!("{}", r.vs_random),
                format!("{}", r.vs_worst),
                format!("{}", r.srf_vs_optimal),
                format!("{}", r.optimal_pick_rate),
            ]);
        }
        headline.push((goal, stats));
    }
    println!(
        "{}",
        render_table(
            "Table VIII(a) — S_PS cost in % of each baseline (lower is better)",
            &["goal", "algorithm", "S_O", "S_SRF", "S_R", "S_W", "S_SRF % of S_O"],
            &rows
        )
    );
    println!("(paper E2E rows: S_O 102–117, S_SRF 58–99, S_R 76–96, S_W 57–79)\n");

    for (goal, stats) in &headline {
        println!(
            "headline [{}]: optimal-pick rate {:.1}% (paper: {}%), vs random {}%, vs SRF {}%, vs worst {}%",
            goal.name(),
            stats.optimal_pick_rate * 100.0,
            match goal {
                OptGoal::EndToEnd => "35.7",
                OptGoal::ProcessingOnly => "26.2",
            },
            pct(stats.avg_vs_random),
            pct(stats.avg_vs_srf),
            pct(stats.avg_vs_worst),
        );
    }
    println!("(paper headline: E2E reduced 11.1% vs random, 17.4% vs SRF, 29.1% vs worst)\n");

    // ---- Table VIII(b): enrichment variant --------------------------------
    println!("running enrichment variant (96-wiki pool, enwiki analogue focus)...");
    let rfr = ModelConfig::Forest { n_trees: 60, max_depth: 14, feature_fraction: 0.6 };
    let pool_inputs = GraphInput::from_tests(ease_graphgen::realworld::wiki_enrichment_pool(
        cfg.scale,
        seed ^ 0x7E57,
    ));
    let pool = profile_quality(&pool_inputs, &cfg.partitioners, &cfg.ks, cfg.seed ^ 3);
    let enriched_quality =
        train_enriched(&artifacts.quality_records, &pool, PropertyTier::Basic, &rfr);
    let mut ease_enriched = ease;
    ease_enriched.quality = enriched_quality;

    let mut rows_b = Vec::new();
    for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
        for (label, filter_enwiki) in [("enwiki-analogue", true), ("all graphs", false)] {
            let subset: Vec<_> = groups
                .iter()
                .filter(|g| !filter_enwiki || g.graph_name.contains("enwiki"))
                .cloned()
                .collect();
            if subset.is_empty() {
                continue;
            }
            let (_, stats) = evaluate_selection(&ease_enriched, &subset, cfg.processing_k, goal);
            rows_b.push(vec![
                goal.name().to_string(),
                label.to_string(),
                pct(stats.avg_vs_optimal),
                pct(stats.avg_vs_random),
                pct(stats.avg_vs_worst),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Table VIII(b) — S_PS with enrichment, in % of baselines",
            &["goal", "evaluated on", "S_O", "S_R", "S_W"],
            &rows_b
        )
    );
    println!("(paper: enrichment helps the enriched type ~4-5%, costs ~2-3% elsewhere)");

    write_csv(
        &results_dir().join("table8a.csv"),
        &[
            "goal",
            "algorithm",
            "vs_optimal",
            "vs_srf",
            "vs_random",
            "vs_worst",
            "srf_vs_optimal",
            "optimal_pick_rate",
        ],
        &csv,
    )
    .expect("write table8a.csv");
    let csv_b: Vec<Vec<String>> = rows_b;
    write_csv(
        &results_dir().join("table8b.csv"),
        &["goal", "evaluated_on", "vs_optimal", "vs_random", "vs_worst"],
        &csv_b,
    )
    .expect("write table8b.csv");
    println!("wrote results/table8a.csv and results/table8b.csv");
}
