//! Fig. 9 — end-to-end run-time of every partitioner on the enwiki-2021
//! analogue for (a) Synthetic-High and (b) Connected Components, annotated
//! with the choices of S_PS (EASE) and S_SRF.
//!
//! Paper's point: for the communication-bound Synthetic-High, the expensive
//! high-quality partitioner (HEP-100) amortizes and both strategies agree;
//! for CC, fast partitioning (DBH) wins end-to-end and chasing the smallest
//! replication factor backfires.

use ease::evaluation::group_truth;
use ease::profiling::{profile_processing, GraphInput};
use ease::report::{f3, render_table, write_csv};
use ease::selector::{strategy_pick, OptGoal, Strategy};
use ease::EaseServiceBuilder;
use ease_bench::{banner, config_from_env, results_dir, seed_from_env};
use ease_procsim::Workload;

fn main() {
    banner("Fig. 9", "per-partitioner E2E time; S_PS vs S_SRF choices");
    let cfg = config_from_env();
    let seed = seed_from_env();
    println!("training EASE...");
    let service = EaseServiceBuilder::from_config(cfg.clone()).train().expect("valid config");

    let enwiki = ease_graphgen::realworld::table4_test_set(cfg.scale, seed ^ 0x7AB4)
        .into_iter()
        .find(|t| t.name.contains("enwiki"))
        .expect("enwiki analogue in Table IV set");
    println!("graph {} — |E|={}", enwiki.name, enwiki.graph.num_edges());
    let workloads = [Workload::Synthetic { s: 10, iterations: 5 }, Workload::ConnectedComponents];
    let records = profile_processing(
        &[GraphInput::Materialized(enwiki)],
        &cfg.partitioners,
        cfg.processing_k,
        &workloads,
        cfg.seed ^ 4,
    );
    let groups = group_truth(&records);
    let mut csv = Vec::new();
    for g in &groups {
        let goal = OptGoal::EndToEnd;
        let sps = service
            .recommend_with_k(&g.props, g.workload, cfg.processing_k, goal)
            .expect("trained workload")
            .best;
        let srf = strategy_pick(Strategy::SmallestRf, &g.truth, goal);
        let optimal = strategy_pick(Strategy::Optimal, &g.truth, goal);
        let mut ranked = g.truth.clone();
        ranked.sort_by(|a, b| a.cost(goal).partial_cmp(&b.cost(goal)).expect("finite"));
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .map(|t| {
                let mut marks = Vec::new();
                if t.partitioner == sps {
                    marks.push("S_PS");
                }
                if t.partitioner == srf {
                    marks.push("S_SRF");
                }
                if t.partitioner == optimal {
                    marks.push("optimal");
                }
                csv.push(vec![
                    g.workload.name().to_string(),
                    t.partitioner.name().to_string(),
                    format!("{}", t.partitioning_secs),
                    format!("{}", t.processing_secs),
                    format!("{}", t.cost(goal)),
                    marks.join("+"),
                ]);
                vec![
                    t.partitioner.name().to_string(),
                    f3(t.partitioning_secs),
                    f3(t.processing_secs),
                    f3(t.cost(goal)),
                    marks.join(" "),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!("Fig. 9 — {} on enwiki analogue (sorted by E2E)", g.workload.label()),
                &["partitioner", "partitioning s", "processing s", "end-to-end s", "selected by"],
                &rows
            )
        );
    }
    println!("(paper: Synthetic-High -> HEP-100 for both S_PS and S_SRF;");
    println!("        CC -> S_PS picks DBH, S_SRF wastes time on HEP-100)");
    write_csv(
        &results_dir().join("fig9.csv"),
        &[
            "workload",
            "partitioner",
            "partitioning_secs",
            "processing_secs",
            "end_to_end_secs",
            "selected_by",
        ],
        &csv,
    )
    .expect("write fig9.csv");
    println!("wrote results/fig9.csv");
}
