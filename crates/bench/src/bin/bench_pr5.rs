//! PR 5 benchmark — the serving economics of `ease serve`:
//!
//! 1. **Cold per-process QPS**: what repeated `ease recommend` invocations
//!    pay today — process startup, model deserialization, graph open and a
//!    cold property cache, per query (measured by actually spawning the
//!    sibling `ease` binary; falls back to an in-process cold path when
//!    the binary is not built).
//! 2. **Warm daemon QPS**: the same query against a resident `ease serve`
//!    daemon over its unix socket — the model loads once, the
//!    fingerprint-keyed property cache stays warm, and a repeated query
//!    pays one content hash plus prediction.
//! 3. **Answer fidelity**: the daemon's answer must be bit-identical to
//!    the cold process's stdout.
//!
//! Acceptance (self-asserted here and gated again by `ci/bench_check.sh`
//! from the recorded `warm_daemon_speedup_min` bound): the warm daemon
//! serves repeated same-graph queries ≥ 10x faster than cold processes.
//!
//! Writes `BENCH_pr5.json`.
//!
//! ```sh
//! cargo run --release -p ease-bench --bin bench_pr5
//! ```

use ease::profiling::TimingMode;
use ease::selector::OptGoal;
use ease::serve::{self, Request, ServeConfig};
use ease::{EaseService, EaseServiceBuilder};
use ease_graph::bel::BelWriter;
use ease_graph::open_path;
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_graphgen::Scale;
use ease_procsim::Workload;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const NUM_VERTICES: usize = 1 << 16;
const NUM_EDGES: usize = 400_000;
const COLD_REPS: usize = 3;
const WARM_REPS: usize = 200;
const SPEEDUP_MIN: f64 = 10.0;

/// The sibling `ease` binary in the same target directory as this bench
/// bin (CI builds all bins before the bench step).
fn ease_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let candidate = exe.parent()?.join("ease");
    candidate.is_file().then_some(candidate)
}

fn main() {
    println!("### BENCH_pr5 — ease serve: warm daemon vs cold per-process serving");
    let dir = std::env::temp_dir().join(format!("bench_pr5_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let bel_path = dir.join("graph.bel");
    let model_path = dir.join("ease.model");
    let socket = dir.join("ease.sock");

    // ---- 0. stream-generate the query graph, train + persist a service --
    // lint: magic-ok(RNG seed that happens to spell the frame magic; changing it changes the graph)
    let rmat = Rmat::new(RMAT_COMBOS[6], NUM_VERTICES, NUM_EDGES, 0xEA5E);
    {
        let mut bel = BelWriter::create(&bel_path).expect("create bel");
        let mut write_error = None;
        rmat.generate_into(&mut |e| {
            if write_error.is_none() {
                write_error = bel.push(e).err();
            }
        });
        assert!(write_error.is_none(), "write bel: {write_error:?}");
        bel.finish_with_vertices(NUM_VERTICES).expect("finish bel");
    }
    println!("graph: |V|={NUM_VERTICES} |E|={NUM_EDGES} ({})", bel_path.display());
    let t = Instant::now();
    let service = EaseServiceBuilder::at_scale(Scale::Tiny)
        .quick_grid()
        .timing(TimingMode::Deterministic)
        .seed(42)
        .train()
        .expect("valid config");
    let train_secs = t.elapsed().as_secs_f64();
    service.save(&model_path).expect("save model");
    println!("trained in {train_secs:.2}s, saved {}", model_path.display());

    let graph_str = bel_path.to_str().expect("utf8 path");

    // ---- 1. cold per-process QPS ---------------------------------------
    // Every invocation pays what a one-shot CLI run pays. Preferred
    // measurement: actually spawn the sibling `ease` binary.
    let (cold_secs, cold_mode, cold_stdout) = match ease_binary() {
        Some(bin) => {
            let mut best = f64::INFINITY;
            let mut stdout = String::new();
            for _ in 0..COLD_REPS {
                let t = Instant::now();
                let out = std::process::Command::new(&bin)
                    .args([
                        "recommend",
                        "--model",
                        model_path.to_str().unwrap(),
                        "--graph",
                        graph_str,
                        "--workload",
                        "pr",
                        "--goal",
                        "e2e",
                    ])
                    .output()
                    .expect("spawn ease");
                let secs = t.elapsed().as_secs_f64();
                assert!(
                    out.status.success(),
                    "cold ease run failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                best = best.min(secs);
                stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
            }
            (best, "process", Some(stdout))
        }
        None => {
            // fallback (e.g. `cargo run --bin bench_pr5` without the CLI
            // built): the in-process cold path — model load + open +
            // extract + predict — which *under*states cold cost (no
            // process startup), so the asserted bound only gets harder
            let mut best = f64::INFINITY;
            for _ in 0..COLD_REPS {
                let t = Instant::now();
                let svc = EaseService::load(&model_path).expect("load model");
                let source = open_path(&bel_path).expect("open bel");
                let wl = Workload::from_name("pr").expect("pr");
                let text = serve::render_recommendation(
                    &svc,
                    graph_str,
                    source.as_ref(),
                    wl,
                    svc.meta().default_k,
                    OptGoal::EndToEnd,
                    serve::DEFAULT_TOP,
                    None,
                )
                .expect("cold render");
                black_box(text);
                best = best.min(t.elapsed().as_secs_f64());
            }
            (best, "in-process", None)
        }
    };
    let cold_qps = 1.0 / cold_secs;
    println!("cold ({cold_mode}): {cold_secs:.4}s per query ({cold_qps:.2} q/s)");

    // ---- 2. warm daemon QPS --------------------------------------------
    // One resident service; repeated same-graph queries over the socket.
    let daemon_service = Arc::new(EaseService::load(&model_path).expect("load model"));
    let handle = serve::serve(Arc::clone(&daemon_service), ServeConfig::at(&socket).workers(2))
        .expect("bind daemon");
    let request = Request::Recommend {
        graph: graph_str.to_string(),
        workload: "pr".to_string(),
        k: None,
        goal: OptGoal::EndToEnd,
        top: serve::DEFAULT_TOP,
        cwd: None,
    };
    // warmup: populates the fingerprint-keyed property cache
    let warm_answer =
        serve::expect_answer(serve::call(&socket, &request).expect("warmup call")).expect("answer");
    let t = Instant::now();
    for _ in 0..WARM_REPS {
        let response = serve::call(&socket, &request).expect("warm call");
        black_box(serve::expect_answer(response).expect("answer"));
    }
    let warm_total = t.elapsed().as_secs_f64();
    let warm_secs = warm_total / WARM_REPS as f64;
    let warm_qps = WARM_REPS as f64 / warm_total;
    let stats = daemon_service.property_cache_stats();
    println!(
        "warm daemon: {:.2} ms per query ({warm_qps:.0} q/s) over {WARM_REPS} queries \
         (cache {} hits / {} misses)",
        warm_secs * 1e3,
        stats.hits,
        stats.misses,
    );
    assert_eq!(stats.misses, 1, "repeated same-graph queries must hit the warm cache");

    // ---- 3. answer fidelity --------------------------------------------
    if let Some(cold_stdout) = &cold_stdout {
        assert_eq!(
            &warm_answer, cold_stdout,
            "daemon answers must be bit-identical to cold-process stdout"
        );
        println!("fidelity: daemon answer bit-identical to cold-process stdout");
    }
    handle.trigger_shutdown();
    let summary = handle.join().expect("clean daemon join");
    let speedup = warm_qps / cold_qps;
    println!(
        "warm-daemon speedup: {speedup:.1}x (bound {SPEEDUP_MIN}x), daemon served {} requests",
        summary.requests_served
    );

    let fidelity = cold_stdout.is_some();
    let json = format!(
        "{{\n  \"benchmark\": \"serve_warm_vs_cold\",\n  \"pr\": 5,\n  \
         \"num_vertices\": {NUM_VERTICES},\n  \"num_edges\": {NUM_EDGES},\n  \
         \"train_secs\": {train_secs:.4},\n  \
         \"cold_mode\": \"{cold_mode}\",\n  \
         \"cold_reps\": {COLD_REPS},\n  \
         \"cold_query_secs\": {cold_secs:.6},\n  \
         \"cold_qps\": {cold_qps:.3},\n  \
         \"warm_reps\": {WARM_REPS},\n  \
         \"warm_query_secs\": {warm_secs:.6},\n  \
         \"warm_qps\": {warm_qps:.2},\n  \
         \"warm_daemon_speedup\": {speedup:.3},\n  \
         \"warm_daemon_speedup_min\": {SPEEDUP_MIN},\n  \
         \"answers_bit_identical\": {fidelity},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"note\": \"cold = full per-process query ({cold_mode} mode: spawn + model load + \
         mmap open + advanced extraction + predict); warm = resident daemon with the \
         fingerprint-keyed property cache, one request per unix-socket connection\"\n}}\n",
        stats.hits, stats.misses,
    );
    std::fs::write("BENCH_pr5.json", &json).expect("write BENCH_pr5.json");
    println!("wrote BENCH_pr5.json");
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        speedup >= SPEEDUP_MIN,
        "acceptance: warm daemon must serve repeated same-graph queries >= {SPEEDUP_MIN}x \
         faster than cold processes, got {speedup:.2}x"
    );
}
