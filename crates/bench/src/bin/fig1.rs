//! Fig. 1 — Performance comparison of graph partitioning algorithms for
//! PageRank on the Friendster (FR) and sk-2005 (SK) analogues.
//!
//! Paper setup: CRVC, 2D, 2PS, NE on 64 partitions / 64 machines,
//! PageRank for 50 iterations. Expected shape: a lower replication factor
//! buys a lower processing time but costs partitioning time; NE ≪ 2D on
//! quality; 2PS is graph-dependent (≈ NE on the clustered web crawl,
//! ≈ hash partitioning on the social network).

use ease::report::{f3, render_table, write_csv};
use ease_bench::{banner, results_dir, scale_from_env, seed_from_env};
use ease_graph::GraphProperties;
use ease_partition::{run_partitioner, PartitionerId};
use ease_procsim::{ClusterSpec, DistributedGraph, Workload};

fn main() {
    banner("Fig. 1", "PageRank: RF / partitioning time / processing time");
    let scale = scale_from_env();
    let seed = seed_from_env();
    let k = 64;
    let workload = Workload::PageRank { iterations: 50 };
    let cluster = ClusterSpec::new(k);
    let partitioners =
        [PartitionerId::Crvc, PartitionerId::TwoD, PartitionerId::TwoPs, PartitionerId::Ne];
    let graphs = [
        ease_graphgen::realworld::friendster_analogue(scale, seed),
        ease_graphgen::realworld::sk2005_analogue(scale, seed ^ 1),
    ];
    let mut csv_rows = Vec::new();
    for tg in &graphs {
        let props = GraphProperties::compute(&tg.graph, ease_graph::PropertyTier::Basic);
        println!(
            "graph {} — |V|={} |E|={} mean degree {:.1}",
            tg.name, props.num_vertices, props.num_edges, props.mean_degree
        );
        let mut rows = Vec::new();
        for &p in &partitioners {
            let run = run_partitioner(p, &tg.graph, k, seed);
            let dg = DistributedGraph::build(&tg.graph, &run.partition);
            let report = workload.execute(&dg, &cluster);
            rows.push(vec![
                p.name().to_string(),
                f3(run.metrics.replication_factor),
                f3(run.partitioning_secs),
                f3(report.total_secs),
            ]);
            csv_rows.push(vec![
                tg.name.clone(),
                p.name().to_string(),
                f3(run.metrics.replication_factor),
                format!("{}", run.partitioning_secs),
                format!("{}", report.total_secs),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!("Fig. 1 rows for {}", tg.name),
                &["partitioner", "replication factor", "partitioning s", "pagerank s"],
                &rows
            )
        );
    }
    write_csv(
        &results_dir().join("fig1.csv"),
        &["graph", "partitioner", "replication_factor", "partitioning_secs", "processing_secs"],
        &csv_rows,
    )
    .expect("write fig1.csv");
    println!("wrote results/fig1.csv");
}
