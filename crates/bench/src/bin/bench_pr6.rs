//! PR 6 benchmark — what the pipelined front buys a warm serving path:
//!
//! 1. **Baseline** (the PR 5 serving shape, reproduced faithfully): v1
//!    framing, a fresh unix connection per request, and the daemon's
//!    fingerprint memo *disabled* — so every warm query still pays
//!    connect + accept + graph open + the `O(|E|)` content hash that keys
//!    the property cache. bench_pr5 showed this caps the daemon near
//!    ~300 q/s while the in-process cached path does thousands.
//! 2. **Pipelined** (this PR): v2 framing, many requests in flight over
//!    *one* connection (unix and TCP), and the stat-keyed fingerprint
//!    memo on (its default) — warm queries cost one frame each way plus a
//!    `stat` and a model inference.
//! 3. **Answer fidelity**: pipelined answers over both transports must be
//!    bit-identical to the v1 one-shot answer (which `tests/serve.rs` pins
//!    to the CLI's stdout) — the memo fast path renders through the same
//!    code as the full path.
//!
//! Acceptance (self-asserted here and gated again by `ci/bench_check.sh`
//! from the recorded `pipelined_speedup_min` bound): the pipelined TCP
//! front sustains ≥ 10x the baseline QPS.
//!
//! Writes `BENCH_pr6.json`.
//!
//! ```sh
//! cargo run --release -p ease-bench --bin bench_pr6
//! ```

use ease::profiling::TimingMode;
use ease::selector::OptGoal;
use ease::serve::{self, Endpoint, Request, ServeConfig};
use ease::{EaseService, EaseServiceBuilder};
use ease_graph::bel::BelWriter;
use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_graphgen::Scale;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const NUM_VERTICES: usize = 1 << 16;
const NUM_EDGES: usize = 400_000;
const ONE_SHOT_REPS: usize = 200;
const PIPELINED_REPS: usize = 2_000;
const WINDOW: usize = 32;
const SPEEDUP_MIN: f64 = 10.0;

fn main() {
    println!("### BENCH_pr6 — ease serve: pipelined v2 + stat memo vs one-shot-per-connection");
    let dir = std::env::temp_dir().join(format!("bench_pr6_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let bel_path = dir.join("graph.bel");
    let model_path = dir.join("ease.model");

    // ---- 0. stream-generate the query graph, train + persist a service --
    // (same graph and scale as bench_pr5, so the baselines line up)
    // lint: magic-ok(RNG seed that happens to spell the frame magic; changing it changes the graph)
    let rmat = Rmat::new(RMAT_COMBOS[6], NUM_VERTICES, NUM_EDGES, 0xEA5E);
    {
        let mut bel = BelWriter::create(&bel_path).expect("create bel");
        let mut write_error = None;
        rmat.generate_into(&mut |e| {
            if write_error.is_none() {
                write_error = bel.push(e).err();
            }
        });
        assert!(write_error.is_none(), "write bel: {write_error:?}");
        bel.finish_with_vertices(NUM_VERTICES).expect("finish bel");
    }
    println!("graph: |V|={NUM_VERTICES} |E|={NUM_EDGES} ({})", bel_path.display());
    let t = Instant::now();
    let service = EaseServiceBuilder::at_scale(Scale::Tiny)
        .quick_grid()
        .timing(TimingMode::Deterministic)
        .seed(42)
        .train()
        .expect("valid config");
    let train_secs = t.elapsed().as_secs_f64();
    service.save(&model_path).expect("save model");
    println!("trained in {train_secs:.2}s, saved {}", model_path.display());
    let request = Request::Recommend {
        graph: bel_path.to_str().expect("utf8 path").to_string(),
        workload: "pr".to_string(),
        k: None,
        goal: OptGoal::EndToEnd,
        top: serve::DEFAULT_TOP,
        cwd: None,
    };

    // ---- 1. baseline daemon: the PR 5 serving shape ---------------------
    // fingerprint_memo(false) reproduces what shipped before this PR: a
    // warm daemon that still reopens and content-hashes the graph on every
    // query to key its property cache
    let baseline_socket = dir.join("baseline.sock");
    let baseline_service = Arc::new(EaseService::load(&model_path).expect("load model"));
    let config = ServeConfig::at(&baseline_socket).workers(2).fingerprint_memo(false);
    let baseline = serve::serve(Arc::clone(&baseline_service), config).expect("bind baseline");
    let reference =
        serve::expect_answer(serve::call(&baseline_socket, &request).expect("warmup call"))
            .expect("answer");
    let t = Instant::now();
    for _ in 0..ONE_SHOT_REPS {
        let response = serve::call(&baseline_socket, &request).expect("one-shot call");
        black_box(serve::expect_answer(response).expect("answer"));
    }
    let one_shot_total = t.elapsed().as_secs_f64();
    let one_shot_qps = ONE_SHOT_REPS as f64 / one_shot_total;
    println!(
        "baseline v1 (connection per request, no memo): {:.2} ms per query ({one_shot_qps:.0} q/s) \
         over {ONE_SHOT_REPS} queries",
        one_shot_total / ONE_SHOT_REPS as f64 * 1e3,
    );
    let stats = baseline_service.property_cache_stats();
    assert_eq!(stats.misses, 1, "baseline still hits the warm property cache");
    baseline.trigger_shutdown();
    baseline.join().expect("clean baseline join");

    // ---- 2. this PR's daemon: v2 pipelining + stat memo -----------------
    let socket = dir.join("ease.sock");
    let daemon_service = Arc::new(EaseService::load(&model_path).expect("load model"));
    let config = ServeConfig::at(&socket).tcp("127.0.0.1:0").workers(2);
    let handle = serve::serve(Arc::clone(&daemon_service), config).expect("bind daemon");
    let tcp = Endpoint::tcp(handle.tcp_addr().expect("tcp bound").to_string());
    let unix = Endpoint::unix(&socket);
    // warmup seeds the property cache and the stat memo
    let warm =
        serve::expect_answer(serve::call(&socket, &request).expect("warmup call")).expect("answer");
    assert_eq!(warm, reference, "memo-on daemon must answer identically to the baseline");

    let requests: Vec<Request> = (0..PIPELINED_REPS).map(|_| request.clone()).collect();
    let measure = |endpoint: &Endpoint, label: &str| -> (f64, String) {
        let t = Instant::now();
        let responses =
            serve::call_pipelined(endpoint, &requests, WINDOW).expect("pipelined batch");
        let total = t.elapsed().as_secs_f64();
        assert_eq!(responses.len(), PIPELINED_REPS);
        let mut answer = String::new();
        for response in responses {
            answer = serve::expect_answer(response).expect("answer");
        }
        let qps = PIPELINED_REPS as f64 / total;
        println!(
            "pipelined v2 over {label}: {:.3} ms per query ({qps:.0} q/s) \
             over {PIPELINED_REPS} queries, window {WINDOW}",
            total / PIPELINED_REPS as f64 * 1e3,
        );
        (qps, answer)
    };
    let (pipelined_unix_qps, unix_answer) = measure(&unix, "unix");
    let (pipelined_tcp_qps, tcp_answer) = measure(&tcp, "tcp");

    // ---- 3. answer fidelity ---------------------------------------------
    // tests/serve.rs pins the v1 daemon answer to the one-shot CLI stdout;
    // chaining to it here makes all paths mutually bit-identical
    assert_eq!(unix_answer, reference, "pipelined unix answers must match one-shot v1");
    assert_eq!(tcp_answer, reference, "pipelined tcp answers must match one-shot v1");
    println!("fidelity: pipelined answers bit-identical over unix and tcp");

    let stats = daemon_service.property_cache_stats();
    assert_eq!(stats.misses, 1, "warm queries must never re-hash the graph");
    handle.trigger_shutdown();
    let summary = handle.join().expect("clean daemon join");
    let speedup = pipelined_tcp_qps / one_shot_qps;
    let unix_speedup = pipelined_unix_qps / one_shot_qps;
    println!(
        "pipelined speedup: tcp {speedup:.1}x / unix {unix_speedup:.1}x over the PR 5 shape \
         (bound {SPEEDUP_MIN}x), daemon served {} requests",
        summary.requests_served
    );

    let json = format!(
        "{{\n  \"benchmark\": \"serve_pipelined_vs_one_shot\",\n  \"pr\": 6,\n  \
         \"num_vertices\": {NUM_VERTICES},\n  \"num_edges\": {NUM_EDGES},\n  \
         \"train_secs\": {train_secs:.4},\n  \
         \"one_shot_reps\": {ONE_SHOT_REPS},\n  \
         \"one_shot_qps\": {one_shot_qps:.2},\n  \
         \"pipelined_reps\": {PIPELINED_REPS},\n  \
         \"pipeline_window\": {WINDOW},\n  \
         \"pipelined_unix_qps\": {pipelined_unix_qps:.2},\n  \
         \"pipelined_tcp_qps\": {pipelined_tcp_qps:.2},\n  \
         \"pipelined_speedup\": {speedup:.3},\n  \
         \"pipelined_speedup_min\": {SPEEDUP_MIN},\n  \
         \"answers_bit_identical\": true,\n  \
         \"note\": \"baseline = the PR 5 serving shape reproduced exactly (v1 framing, fresh \
         unix connection per request, fingerprint memo off, so every warm query reopens and \
         content-hashes the graph); pipelined = this PR (v2 framing, one connection, {WINDOW} \
         requests in flight, out-of-order completion, stat-keyed fingerprint memo on); \
         speedup = pipelined tcp qps / baseline qps\"\n}}\n",
    );
    std::fs::write("BENCH_pr6.json", &json).expect("write BENCH_pr6.json");
    println!("wrote BENCH_pr6.json");
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        speedup >= SPEEDUP_MIN,
        "acceptance: the pipelined tcp front must sustain >= {SPEEDUP_MIN}x the \
         one-shot-per-connection baseline QPS, got {speedup:.2}x"
    );
}
