//! Fig. 7 — MAPE heatmaps per (graph type × partitioner):
//! (a) replication factor without enrichment,
//! (b) replication factor with 96-wiki enrichment,
//! (c) vertex balance without enrichment.

use ease::enrich::train_enriched;
use ease::evaluation::mape_heatmap;
use ease::predictors::QualityPredictor;
use ease::profiling::{profile_quality, GraphInput};
use ease::report::{render_table, write_csv};
use ease_bench::{banner, config_from_env, results_dir, seed_from_env};
use ease_graph::PropertyTier;
use ease_graphgen::realworld::GraphType;
use ease_ml::ModelConfig;
use ease_partition::{PartitionerId, QualityTarget};

fn print_heatmap(title: &str, heat: &[(GraphType, Vec<(PartitionerId, f64)>)], csv_name: &str) {
    let headers: Vec<String> = std::iter::once("type".to_string())
        .chain(PartitionerId::ALL.iter().map(|p| p.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (gt, cells) in heat {
        let mut row = vec![gt.name().to_string()];
        for p in PartitionerId::ALL {
            let v = cells.iter().find(|(pp, _)| *pp == p).map(|(_, m)| *m);
            row.push(v.map_or("-".into(), |m| format!("{m:.2}")));
        }
        rows.push(row);
    }
    println!("{}", render_table(title, &header_refs, &rows));
    write_csv(&results_dir().join(csv_name), &header_refs, &rows).expect("write heatmap csv");
}

fn main() {
    banner("Fig. 7", "MAPE heatmaps (type x partitioner)");
    let cfg = config_from_env();
    let seed = seed_from_env();
    // The enrichment study pins RFR (paper: XGB only marginally better but
    // ~140x slower to retrain per enrichment level).
    let rfr = ModelConfig::Forest { n_trees: 60, max_depth: 14, feature_fraction: 0.6 };

    println!("profiling training corpus...");
    let train = profile_quality(&cfg.small_inputs(), &cfg.partitioners, &cfg.ks, cfg.seed);
    println!("profiling test set...");
    let test_inputs = GraphInput::from_tests(ease_graphgen::realworld::standard_test_set(
        cfg.scale,
        seed ^ 0x7E57,
    ));
    let test = profile_quality(&test_inputs, &cfg.partitioners, &cfg.ks, cfg.seed ^ 1);

    println!("training (fixed RFR, basic features)...");
    let qp = QualityPredictor::train_fixed(&train, PropertyTier::Basic, &rfr);
    print_heatmap(
        "Fig. 7(a) — replication-factor MAPE (no enrichment)",
        &mape_heatmap(&qp, &test, QualityTarget::ReplicationFactor),
        "fig7a_rf.csv",
    );
    print_heatmap(
        "Fig. 7(c) — vertex-balance MAPE (no enrichment)",
        &mape_heatmap(&qp, &test, QualityTarget::VertexBalance),
        "fig7c_vb.csv",
    );

    println!("profiling 96-wiki enrichment pool...");
    let pool_inputs = GraphInput::from_tests(ease_graphgen::realworld::wiki_enrichment_pool(
        cfg.scale,
        seed ^ 0x7E57,
    ));
    let pool = profile_quality(&pool_inputs, &cfg.partitioners, &cfg.ks, cfg.seed ^ 2);
    let qp_enriched = train_enriched(&train, &pool, PropertyTier::Basic, &rfr);
    print_heatmap(
        "Fig. 7(b) — replication-factor MAPE (enriched with 96 wiki graphs)",
        &mape_heatmap(&qp_enriched, &test, QualityTarget::ReplicationFactor),
        "fig7b_rf_enriched.csv",
    );
    println!("(paper: enrichment cuts wiki-row MAPE ~1.0 -> ~0.3 and helps web graphs)");
    println!("wrote results/fig7a_rf.csv, results/fig7b_rf_enriched.csv, results/fig7c_vb.csv");
}
