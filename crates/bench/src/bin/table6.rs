//! Table VI — PartitioningQualityPredictor accuracy on the real-world test
//! set: MAPE + RMSE per quality target, with the replication factor
//! evaluated under both the basic and the advanced feature sets.

use ease::evaluation::quality_test_scores;
use ease::predictors::QualityPredictor;
use ease::profiling::{profile_quality, GraphInput};
use ease::report::{f3, render_table, write_csv};
use ease_bench::{banner, config_from_env, results_dir, seed_from_env};
use ease_graph::PropertyTier;
use ease_partition::QualityTarget;

fn main() {
    banner("Table VI", "quality-predictor MAPE/RMSE on the test set");
    let cfg = config_from_env();
    let seed = seed_from_env();

    println!("profiling R-MAT-SMALL training corpus ({} graphs)...", cfg.small_inputs().len());
    let train = profile_quality(&cfg.small_inputs(), &cfg.partitioners, &cfg.ks, cfg.seed);
    println!("profiling real-world test set...");
    let test_inputs = GraphInput::from_tests(ease_graphgen::realworld::standard_test_set(
        cfg.scale,
        seed ^ 0x7E57,
    ));
    let test = profile_quality(&test_inputs, &cfg.partitioners, &cfg.ks, cfg.seed ^ 1);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    // basic-feature models for all five targets
    println!("training quality predictor (basic features, grid search)...");
    let qp_basic =
        QualityPredictor::train(&train, PropertyTier::Basic, &cfg.grid, cfg.folds, cfg.seed);
    for (target, mape, rmse) in quality_test_scores(&qp_basic, &test) {
        let model = qp_basic
            .chosen
            .iter()
            .find(|(t, _)| *t == target)
            .map(|(_, c)| c.config.kind().name())
            .unwrap_or("?");
        rows.push(vec![
            target.name().to_string(),
            model.to_string(),
            "basic".to_string(),
            f3(mape),
            f3(rmse),
        ]);
        csv.push(vec![
            target.name().to_string(),
            model.to_string(),
            "basic".to_string(),
            format!("{mape}"),
            format!("{rmse}"),
        ]);
    }
    // advanced features for the replication factor (paper: slight gain)
    println!("training RF model with advanced features...");
    let qp_adv =
        QualityPredictor::train(&train, PropertyTier::Advanced, &cfg.grid, cfg.folds, cfg.seed);
    let adv_scores = quality_test_scores(&qp_adv, &test);
    if let Some((t, mape, rmse)) =
        adv_scores.iter().find(|(t, _, _)| *t == QualityTarget::ReplicationFactor)
    {
        let model = qp_adv
            .chosen
            .iter()
            .find(|(tt, _)| tt == t)
            .map(|(_, c)| c.config.kind().name())
            .unwrap_or("?");
        rows.push(vec![
            t.name().to_string(),
            model.to_string(),
            "advanced".to_string(),
            f3(*mape),
            f3(*rmse),
        ]);
        csv.push(vec![
            t.name().to_string(),
            model.to_string(),
            "advanced".to_string(),
            format!("{mape}"),
            format!("{rmse}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table VI — PartitioningQualityPredictor test scores",
            &["target", "model", "features", "MAPE", "RMSE"],
            &rows
        )
    );
    println!("(paper: RF MAPE 0.296 basic / 0.288 advanced; balances 0.079–0.154)");
    write_csv(
        &results_dir().join("table6.csv"),
        &["target", "model", "features", "mape", "rmse"],
        &csv,
    )
    .expect("write table6.csv");
    println!("wrote results/table6.csv");
}
