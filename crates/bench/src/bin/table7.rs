//! Table VII — Random-forest feature importance for the five quality
//! metrics (basic feature set), grouped into the paper's feature families:
//! Partitioner (one-hot columns summed), Mean Degree, #Partitions,
//! Degree Distr. (in+out skew), Density.

use ease::evaluation::grouped_importances;
use ease::predictors::QualityPredictor;
use ease::profiling::profile_quality;
use ease::report::{f3, render_table, write_csv};
use ease_bench::{banner, config_from_env, results_dir};
use ease_graph::PropertyTier;
use ease_ml::ModelConfig;
use ease_partition::QualityTarget;

fn main() {
    banner("Table VII", "RFR feature importance per quality metric");
    let cfg = config_from_env();
    let rfr = ModelConfig::Forest { n_trees: 60, max_depth: 14, feature_fraction: 0.6 };

    println!("profiling training corpus...");
    let train = profile_quality(&cfg.small_inputs(), &cfg.partitioners, &cfg.ks, cfg.seed);
    println!("training fixed RFR models (basic features)...");
    let qp = QualityPredictor::train_fixed(&train, PropertyTier::Basic, &rfr);

    // collect the union of group labels from the first target
    let first =
        grouped_importances(&qp, QualityTarget::ReplicationFactor).expect("forest importances");
    let labels: Vec<&str> = first.iter().map(|(l, _)| *l).collect();
    let header: Vec<String> = std::iter::once("feature".to_string())
        .chain(QualityTarget::ALL.iter().map(|t| t.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows: Vec<Vec<String>> = labels.iter().map(|l| vec![l.to_string()]).collect();
    for target in QualityTarget::ALL {
        let groups = grouped_importances(&qp, target).expect("importances");
        for (i, label) in labels.iter().enumerate() {
            let v = groups.iter().find(|(l, _)| l == label).map(|(_, v)| *v).unwrap_or(0.0);
            rows[i].push(f3(v));
        }
    }
    println!(
        "{}",
        render_table("Table VII — grouped RFR feature importances", &header_refs, &rows)
    );
    println!("(paper: Partitioner 0.244–0.542, #Partitions 0.177–0.472,");
    println!("        Degree Distr. 0.165–0.372, Mean Degree 0.274 for RF, Density ≤ 0.034)");
    write_csv(&results_dir().join("table7.csv"), &header_refs, &rows).expect("write table7.csv");
    println!("wrote results/table7.csv");
}
