//! Fig. 6 — (a–e) graph-property distributions of the R-MAT corpus, the
//! Barabási–Albert sweep and the real-world library; (f) the correlation
//! between clustering coefficient and HDRF replication factor.
//!
//! The paper's point: R-MAT covers the property ranges of real graphs
//! while BA cannot, and higher clustering ⇒ lower replication factor.

use ease::report::{f3, render_table, write_csv};
use ease_bench::{banner, results_dir, scale_from_env, seed_from_env};
use ease_graph::{GraphProperties, PropertyTier};
use ease_graphgen::grids::{ba_sweep, fig6f_corpus, rmat_small_corpus};
use ease_partition::{run_partitioner, PartitionerId};

struct Summary {
    min: f64,
    median: f64,
    max: f64,
}

fn summarize(mut values: Vec<f64>) -> Summary {
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = values.len();
    Summary { min: values[0], median: values[n / 2], max: values[n - 1] }
}

fn main() {
    banner("Fig. 6", "property coverage + clustering/RF correlation");
    let scale = scale_from_env();
    let seed = seed_from_env();

    // --- property families -------------------------------------------------
    let mut families: Vec<(&str, Vec<GraphProperties>)> = Vec::new();
    let rmat: Vec<GraphProperties> = rmat_small_corpus(scale)
        .iter()
        .map(|s| GraphProperties::compute(&s.generate(), PropertyTier::Advanced))
        .collect();
    families.push(("R-MAT", rmat));
    let ba: Vec<GraphProperties> = ba_sweep(scale)
        .iter()
        .map(|(_, gen)| GraphProperties::compute(&gen.generate(), PropertyTier::Advanced))
        .collect();
    families.push(("BA", ba));
    let rw: Vec<GraphProperties> = ease_graphgen::realworld::full_library(scale, seed)
        .iter()
        .map(|t| GraphProperties::compute(&t.graph, PropertyTier::Advanced))
        .collect();
    families.push(("RW", rw));

    let metrics: [(&str, fn(&GraphProperties) -> f64); 5] = [
        ("mean degree", |p| p.mean_degree),
        ("clustering coeff", |p| p.avg_lcc.unwrap_or(0.0)),
        ("mean triangles", |p| p.avg_triangles.unwrap_or(0.0)),
        ("in-deg skew", |p| p.in_degree_skew),
        ("out-deg skew", |p| p.out_degree_skew),
    ];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (metric_name, f) in metrics {
        for (family, props) in &families {
            let s = summarize(props.iter().map(f).collect());
            rows.push(vec![
                metric_name.to_string(),
                family.to_string(),
                f3(s.min),
                f3(s.median),
                f3(s.max),
            ]);
            csv_rows.push(vec![
                metric_name.to_string(),
                family.to_string(),
                format!("{}", s.min),
                format!("{}", s.median),
                format!("{}", s.max),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Fig. 6(a-e) — property distributions (min / median / max)",
            &["property", "family", "min", "median", "max"],
            &rows
        )
    );
    write_csv(
        &results_dir().join("fig6_properties.csv"),
        &["property", "family", "min", "median", "max"],
        &csv_rows,
    )
    .expect("write fig6 csv");

    // --- (f): clustering coefficient vs HDRF replication factor ------------
    let mut scatter = Vec::new();
    for spec in fig6f_corpus(scale) {
        let g = spec.generate();
        let props = GraphProperties::compute(&g, PropertyTier::Advanced);
        let run = run_partitioner(PartitionerId::Hdrf, &g, 64, seed);
        scatter.push((
            spec.num_vertices,
            props.avg_lcc.unwrap_or(0.0),
            run.metrics.replication_factor,
        ));
    }
    // The paper's Fig. 6(f) plots one line per |V|; the claimed correlation
    // ("high clustering coefficient ⇒ low replication factor") holds WITHIN
    // each fixed-|V| line across the nine R-MAT combos. Pooled across
    // densities, mean degree dominates both quantities and masks the effect,
    // so we report per-line correlations.
    let pearson = |pts: &[(f64, f64)]| -> f64 {
        let n = pts.len() as f64;
        let (mx, my) =
            (pts.iter().map(|p| p.0).sum::<f64>() / n, pts.iter().map(|p| p.1).sum::<f64>() / n);
        let cov: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pts.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pts.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        cov / (sx * sy).max(1e-12)
    };
    let mut vertex_counts: Vec<usize> = scatter.iter().map(|s| s.0).collect();
    vertex_counts.sort_unstable();
    vertex_counts.dedup();
    let mut within = Vec::new();
    for &v in &vertex_counts {
        let pts: Vec<(f64, f64)> =
            scatter.iter().filter(|s| s.0 == v).map(|s| (s.1, s.2)).collect();
        if pts.len() >= 3 {
            let c = pearson(&pts);
            println!("Fig. 6(f): |V|={v:>6}: corr(clustering, HDRF RF) = {c:+.3}");
            within.push(c);
        }
    }
    let mean_within = within.iter().sum::<f64>() / within.len().max(1) as f64;
    println!(
        "Fig. 6(f): mean within-|V| correlation over {} lines = {mean_within:+.3}",
        within.len()
    );
    println!("(paper: negative — among same-size graphs, high clustering partitions easily)\n");
    let csv: Vec<Vec<String>> = scatter
        .iter()
        .map(|(v, lcc, rf)| vec![format!("{v}"), format!("{lcc}"), format!("{rf}")])
        .collect();
    write_csv(
        &results_dir().join("fig6f_scatter.csv"),
        &["num_vertices", "clustering_coeff", "hdrf_rf_k64"],
        &csv,
    )
    .expect("write fig6f csv");
    println!("wrote results/fig6_properties.csv and results/fig6f_scatter.csv");
}
