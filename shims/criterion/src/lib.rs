//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace benches use: `Criterion::default()`
//! with `measurement_time` / `warm_up_time`, `benchmark_group` with
//! `sample_size` / `bench_with_input` / `bench_function` / `finish`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! performs a short warm-up followed by `sample_size` timed batches and
//! reports the median and min per-iteration time — enough to compare hot
//! paths locally while keeping `cargo bench` runs fast and dependency-free.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark label; mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

#[derive(Debug, Clone)]
struct Settings {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            sample_size: 10,
        }
    }
}

#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings.clone(), _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.settings.clone(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.settings.clone(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.id), self.settings.clone(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, settings: Settings, mut f: F) {
    // Warm-up: discover a per-sample iteration count that fits the budget.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));
    while warm_start.elapsed() < settings.warm_up_time {
        f(&mut b);
        per_iter = (per_iter + b.elapsed.max(Duration::from_nanos(1))) / 2;
    }
    let budget_per_sample = settings.measurement_time / settings.sample_size.max(1) as u32;
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!(
        "bench {label:<48} median {:>12} min {:>12} ({} samples x {iters} iters)",
        fmt_time(median),
        fmt_time(min),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirror of `criterion_group!` — both the struct-ish and plain forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
