//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments without a crates.io mirror, so this
//! shim implements exactly the subset of the `rand` 0.8 API the sources use:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`
//! and `seq::SliceRandom::{shuffle, choose}`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic for a fixed seed, which is the
//! only contract the graph generators rely on.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // i128 arithmetic handles signed bounds and full-domain
                // spans without underflow (all supported types are <= 64 bit)
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.start() + f64::sample(rng) * (self.end() - self.start())
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_signed_and_extreme_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_negative = false;
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            saw_negative |= v < 0;
            let w = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&w));
            let full = rng.gen_range(i64::MIN..i64::MAX);
            assert!(full < i64::MAX);
        }
        assert!(saw_negative);
    }
}
