//! Value-generation strategies. Unlike real proptest there is no value
//! tree / shrinking: a strategy is just a deterministic function of an RNG.

use rand::{Rng, SampleRange, StdRng};

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

/// Constant strategy (`Just(v)`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: rejected 1000 candidates in a row", self.whence)
    }
}

// Ranges are strategies: `0u64..50`, `1usize..=8`, `-100.0f64..100.0`, ...
impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
