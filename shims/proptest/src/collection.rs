//! `prop::collection` — vector strategies.

use crate::strategy::Strategy;
use rand::{Rng, StdRng};

/// Anything convertible to a size range for `vec`.
pub trait IntoSizeRange {
    fn bounds(&self) -> (usize, usize); // inclusive
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.min == self.max { self.min } else { rng.gen_range(self.min..=self.max) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}
