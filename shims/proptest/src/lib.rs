//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and tuple
//! strategies, `prop_map` / `prop_flat_map`, `prop::collection::vec`,
//! `prop::sample::select`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   case number; re-running is deterministic, so the failure reproduces.
//! * **Deterministic seeding.** Cases are generated from a fixed seed, so
//!   test runs are reproducible across machines and CI.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Run one named property: generate inputs from `strategies`, call the body.
///
/// This is the runtime behind the [`proptest!`] macro; not part of the real
/// proptest API surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::new($cfg);
                __runner.run(stringify!($name), |__rng| {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::Reject> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// `prop_assert!(cond, args...)` — fails the current case when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// `prop_assert_eq!(a, b)` — equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            panic!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            panic!($($fmt)*);
        }
    }};
}

/// `prop_assert_ne!(a, b)` — inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            panic!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            );
        }
    }};
}

/// `prop_assume!(cond)` — reject (skip) the current case when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static EXECUTED: AtomicUsize = AtomicUsize::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(37))]

        /// The runner executes exactly `cases` bodies (not zero, not one).
        /// Deliberately NOT `#[test]`: invoked only by
        /// `zz_case_count_was_honoured` so the count cannot race with a
        /// parallel standalone run.
        fn runner_executes_configured_cases(x in 0u32..100) {
            EXECUTED.fetch_add(1, Ordering::SeqCst);
            prop_assert!(x < 100);
        }

        /// Generated values respect range bounds, assume skips cases.
        #[test]
        fn ranges_and_assume(v in 10usize..20, f in -1.0f64..1.0) {
            prop_assume!(v != 10); // must never observe the rejected value
            prop_assert!(v > 10 && v < 20);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Composite strategies: tuples, maps, collections, select.
        #[test]
        fn composite_strategies(
            v in prop::collection::vec((0u32..5, 0u32..5), 3..7),
            pick in prop::sample::select(vec!["a", "b", "c"]),
            mapped in (1usize..4).prop_map(|n| n * 2),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&(a, b)| a < 5 && b < 5));
            prop_assert!(["a", "b", "c"].contains(&pick));
            prop_assert!([2, 4, 6].contains(&mapped));
        }

        /// flat_map threads dependent sizes through correctly.
        #[test]
        fn flat_map_dependent_sizes(
            (rows, cols) in (1usize..6, 1usize..4).prop_flat_map(|(r, c)| {
                (prop::collection::vec(prop::collection::vec(0.0f64..1.0, c..=c), r..=r), Just(c))
            }).prop_map(|(m, c)| (m, c)),
        ) {
            prop_assert!(rows.iter().all(|row| row.len() == cols));
        }
    }

    #[test]
    fn zz_case_count_was_honoured() {
        EXECUTED.store(0, Ordering::SeqCst);
        runner_executes_configured_cases();
        assert_eq!(EXECUTED.load(Ordering::SeqCst), 37);
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5));
            runner.run("always_fails", |_rng| -> Result<(), crate::test_runner::Reject> {
                panic!("intentional");
            });
        });
        assert!(result.is_err(), "a failing property must fail the test");
    }

    #[test]
    fn determinism_same_name_same_values() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(20));
            runner.run("det_probe", |rng| {
                out.push(Strategy::generate(&(0u64..1_000_000), rng));
                Ok(())
            });
        }
        assert_eq!(a, b);
    }
}
