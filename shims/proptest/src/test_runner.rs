//! Case runner: executes a property `cases` times with deterministic RNG.

use rand::{RngCore, SeedableRng, StdRng};

/// Mirror of `proptest::test_runner::Config` (prelude name: `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
    /// Abort after this many consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Marker returned by `prop_assume!` to skip a case.
#[derive(Debug)]
pub struct Reject;

pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Run `case` up to `config.cases` times. Failures panic (no shrinking);
    /// the panic message carries the case index and the fixed per-test seed,
    /// so a failure is reproducible by re-running the test.
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), Reject>,
    {
        // Per-test deterministic seed derived from the property name.
        let seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3));
        let mut rejects = 0u32;
        let mut executed = 0u32;
        let mut attempt = 0u64;
        while executed < self.config.cases {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt));
            // burn-in so consecutive attempt seeds decorrelate
            for _ in 0..4 {
                rng.next_u64();
            }
            attempt += 1;
            let case_no = executed;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            match result {
                Ok(Ok(())) => {
                    executed += 1;
                    rejects = 0;
                }
                Ok(Err(Reject)) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        panic!(
                            "property `{name}`: too many prop_assume! rejections \
                             ({rejects} in a row after {executed} cases)"
                        );
                    }
                }
                Err(payload) => {
                    eprintln!(
                        "property `{name}` failed at case {case_no} \
                         (attempt {attempt}, seed base {seed:#x})"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}
