//! `prop::sample` — choosing among explicit values.

use crate::strategy::Strategy;
use rand::{Rng, StdRng};

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// `prop::sample::select(vec)` — uniform choice from a non-empty vector.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty options");
    Select { options }
}
